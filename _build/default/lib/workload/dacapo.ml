let noise ?(busy = 0.06) ?(jitter = 0.004) ?(smt = 0.004) ?(tail_prob = 0.) ?(tail_frac = 0.08)
    () =
  {
    Profile.busy_std_frac = busy;
    unit_tail_prob = 0.;
    unit_tail_cycles = 0;
    run_jitter = jitter;
    run_tail_prob = tail_prob;
    run_tail_frac = tail_frac;
    smt_jitter = smt;
  }

let jvm ~vl ~vs ~cas ~locks =
  { Profile.volatile_loads = vl; volatile_stores = vs; cas; locks }

let h2 =
  Profile.make "h2" ~threads:6 ~units_per_thread:400 ~unit_busy_cycles:7000 ~unit_loads:40
    ~unit_stores:40 ~working_set:4096 ~shared_locations:96 ~share_ratio:0.12
    ~jvm:(jvm ~vl:2.18 ~vs:2.36 ~cas:0.36 ~locks:2.72)
    ~noise:(noise ~busy:0.08 ~jitter:0.006 ())

let lusearch =
  Profile.make "lusearch" ~threads:8 ~units_per_thread:400 ~unit_busy_cycles:6400
    ~unit_loads:50 ~unit_stores:10 ~working_set:4096 ~shared_locations:64 ~share_ratio:0.08
    ~jvm:(jvm ~vl:2.18 ~vs:0.36 ~cas:0.00 ~locks:1.09)
    ~noise:(noise ~busy:0.12 ~jitter:0.018 ~tail_prob:0.05 ())

let spark =
  Profile.make "spark" ~threads:8 ~units_per_thread:400 ~unit_busy_cycles:3400 ~unit_loads:30
    ~unit_stores:18 ~working_set:8192 ~shared_locations:128 ~share_ratio:0.2
    ~jvm:(jvm ~vl:1.81 ~vs:10.89 ~cas:1.81 ~locks:1.09)
    ~noise:(noise ~busy:0.06 ~jitter:0.004 ~smt:0.004 ())

let sunflow =
  Profile.make "sunflow" ~threads:8 ~units_per_thread:400 ~unit_busy_cycles:3600
    ~unit_loads:26 ~unit_stores:8 ~working_set:2048 ~shared_locations:32 ~share_ratio:0.05
    ~jvm:(jvm ~vl:0.73 ~vs:0.36 ~cas:0.00 ~locks:0.36)
    ~noise:(noise ~busy:0.08 ~jitter:0.01 ~smt:0.02 ())

let tomcat =
  Profile.make "tomcat" ~threads:8 ~units_per_thread:360 ~unit_busy_cycles:7000
    ~unit_loads:35 ~unit_stores:20 ~working_set:4096 ~shared_locations:96 ~share_ratio:0.1
    ~jvm:(jvm ~vl:1.81 ~vs:1.09 ~cas:0.36 ~locks:1.81)
    ~noise:(noise ~busy:0.1 ~jitter:0.02 ~smt:0.02 ~tail_prob:0.06 ())

let tradebeans =
  Profile.make "tradebeans" ~threads:8 ~units_per_thread:360 ~unit_busy_cycles:7000
    ~unit_loads:38 ~unit_stores:22 ~working_set:4096 ~shared_locations:96 ~share_ratio:0.1
    ~jvm:(jvm ~vl:2.00 ~vs:1.63 ~cas:0.18 ~locks:1.81)
    ~noise:(noise ~busy:0.09 ~jitter:0.016 ~tail_prob:0.04 ())

let tradesoap =
  Profile.make "tradesoap" ~threads:8 ~units_per_thread:360 ~unit_busy_cycles:7900
    ~unit_loads:38 ~unit_stores:22 ~working_set:4096 ~shared_locations:96 ~share_ratio:0.1
    ~jvm:(jvm ~vl:1.81 ~vs:1.45 ~cas:0.18 ~locks:1.63)
    ~noise:(noise ~busy:0.08 ~jitter:0.01 ~smt:0.006 ())

let xalan =
  Profile.make "xalan" ~threads:8 ~units_per_thread:400 ~unit_busy_cycles:4100 ~unit_loads:35
    ~unit_stores:25 ~working_set:4096 ~shared_locations:64 ~share_ratio:0.15
    ~jvm:(jvm ~vl:1.81 ~vs:1.45 ~cas:0.00 ~locks:6.53)
    ~noise:(noise ~busy:0.08 ~jitter:0.008 ~smt:0.12 ~tail_prob:0.02 ())

let all = [ h2; lusearch; spark; sunflow; tomcat; tradebeans; tradesoap; xalan ]

let by_name name = List.find_opt (fun (p : Profile.t) -> p.Profile.name = name) all
