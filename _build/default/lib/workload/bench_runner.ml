open Wmm_util
open Wmm_isa
open Wmm_machine

type result = {
  throughput : float;
  wall_ns : float;
  response_mean_ns : float;
  response_max_ns : float;
  stats : Perf.stats;
}

(* Multiplicative run-level noise: gaussian jitter plus an occasional
   heavy-tailed outlier, with the SMT term added on POWER. *)
let noise_factor (p : Profile.t) arch rng =
  let noise = p.Profile.noise in
  let sigma =
    noise.Profile.run_jitter
    +. (if Arch.has_smt_interference arch then noise.Profile.smt_jitter else 0.)
  in
  let base = if sigma > 0. then exp (Rng.gaussian rng ~mean:0. ~std:sigma) else 1. in
  let tail =
    if noise.Profile.run_tail_prob > 0. && Rng.unit_float rng < noise.Profile.run_tail_prob
    then 1. +. (noise.Profile.run_tail_frac *. Rng.pareto rng ~shape:1.8 ~scale:1.)
    else 1.
  in
  (* SMT interference on POWER also produces one-sided outlier runs,
     not just wider gaussians - the mechanism behind xalan's
     instability there. *)
  let smt_tail =
    let smt = noise.Profile.smt_jitter in
    if
      Arch.has_smt_interference arch && smt > 0.
      && Rng.unit_float rng < Float.min 0.35 (smt *. 3.)
    then 1. +. Rng.pareto rng ~shape:1.6 ~scale:(smt *. 4.)
    else 1.
  in
  base *. tail *. smt_tail

let simulate (p : Profile.t) platform ~units ~seed =
  let arch = Generate.platform_arch platform in
  let streams = Generate.streams ~units_override:units p platform ~seed in
  let config = Perf.config ~seed ~cores:(max 1 (Array.length streams)) arch in
  (Perf.run config streams, config)

let run (p : Profile.t) platform ~seed =
  let arch = Generate.platform_arch platform in
  (* The noise stream must differ between fencing configurations:
     run-to-run measurement noise does not cancel between a base and
     a test case on real hardware.  Hash the platform configuration
     into the seed. *)
  let noise_rng = Rng.create ((seed * 65599) + Hashtbl.hash platform) in
  match p.Profile.measurement with
  | Profile.Throughput ->
      let stats, config = simulate p platform ~units:p.Profile.units_per_thread ~seed in
      let noisy_ns = Perf.wall_ns config stats *. noise_factor p arch noise_rng in
      let threads = Profile.effective_threads p arch in
      let total_units = float_of_int (threads * p.Profile.units_per_thread) in
      {
        throughput = total_units /. (noisy_ns /. 1000.);
        wall_ns = noisy_ns;
        response_mean_ns = nan;
        response_max_ns = nan;
        stats;
      }
  | Profile.Response requests ->
      let units_per_request = max 1 (p.Profile.units_per_thread / requests) in
      let times =
        Array.init requests (fun i ->
            let stats, config =
              simulate p platform ~units:units_per_request ~seed:(seed + (i * 131))
            in
            Perf.wall_ns config stats *. noise_factor p arch noise_rng)
      in
      let last_stats, _ =
        simulate p platform ~units:1 ~seed
      in
      let total_units =
        float_of_int
          (Profile.effective_threads p arch * units_per_request * requests)
      in
      let total_ns = Array.fold_left ( +. ) 0. times in
      {
        throughput = total_units /. (total_ns /. 1000.);
        wall_ns = total_ns;
        response_mean_ns = Stats.mean times;
        response_max_ns = Stats.maximum times;
        stats = last_stats;
      }

let samples p platform ~seeds = List.map (fun seed -> run p platform ~seed) seeds
