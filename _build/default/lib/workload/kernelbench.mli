(** Synthetic stand-ins for the paper's Linux-kernel benchmarks
    (section 4.3): netperf TCP/UDP over loopback, ebizzy, the
    OpenStreetMap tile-server stack, a kernel compilation, the
    lmbench system-call microbenchmark subset, and the JVM
    benchmarks re-run as kernel workloads (which exercise the kernel
    very little - the paper finds h2 and spark almost completely
    insensitive to kernel macro changes).

    Macro invocation densities are calibrated against the paper's
    Fig. 9 sensitivities for [read_barrier_depends] (netperf_udp
    k ~ 0.0094, lmbench ~ 0.0053, netperf_tcp ~ 0.0036, ebizzy
    ~ 0.0011, xalan ~ 0.0004, osm ~ 0.0002) and the macro-impact
    ranking of Fig. 7 (smp_mb, read_once, read_barrier_depends on
    top). *)

val netperf_tcp : Profile.t
val netperf_udp : Profile.t
val ebizzy : Profile.t
val osm_tiles : Profile.t

val osm_stack : Profile.t
(** Response-mode: mean and max response are reported separately
    ("osm_stack (avg)" / "osm_stack (max)" in the paper's Fig. 8). *)

val kernel_compile : Profile.t
val lmbench : Profile.t

val lmbench_parts : Profile.t list
(** The twelve individual lmbench microbenchmarks (fcntl, proc_exec,
    proc_fork, select_100, sem, sig_catch, sig_install,
    syscall_fstat, syscall_null, syscall_open, syscall_read,
    syscall_write); the paper aggregates them by arithmetic mean
    after comparison to the base case. *)

val h2 : Profile.t
val spark : Profile.t
val xalan : Profile.t

val all : Profile.t list
(** The eleven profiles of the paper's Fig. 8. *)

val by_name : string -> Profile.t option
