lib/core/experiment.mli: Arch Generate Profile Sensitivity Stats Wmm_costfn Wmm_isa Wmm_machine Wmm_util Wmm_workload
