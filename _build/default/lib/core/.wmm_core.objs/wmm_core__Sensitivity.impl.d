lib/core/sensitivity.ml: Array Fit Float Wmm_util
