lib/core/instrumentation.ml: Array Barrier Bench_runner Generate Jvm List Uop Wmm_machine Wmm_platform Wmm_util Wmm_workload
