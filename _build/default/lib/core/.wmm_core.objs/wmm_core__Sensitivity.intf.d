lib/core/sensitivity.mli:
