lib/core/instrumentation.mli: Arch Generate Profile Uop Wmm_isa Wmm_machine Wmm_platform Wmm_workload
