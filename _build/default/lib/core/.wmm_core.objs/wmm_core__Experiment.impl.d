lib/core/experiment.ml: Arch Array Bench_runner Cost_function Float Generate Hashtbl List Profile Sensitivity Stats Wmm_costfn Wmm_isa Wmm_util Wmm_workload
