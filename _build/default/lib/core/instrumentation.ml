open Wmm_machine
open Wmm_platform
open Wmm_workload

type counter_kind = Shared_counter | Per_thread_counter | Register_counter

let counter_uop kind ~path_index =
  match kind with
  | Shared_counter -> Uop.Counter_shared path_index
  | Per_thread_counter -> Uop.Counter_private path_index
  | Register_counter ->
      (* An ideal register counter: one ALU op, no memory traffic. *)
      Uop.Busy 1

let counted_jvm_platform kind (config : Jvm.config) =
  let config, _ =
    List.fold_left
      (fun (c, i) elemental ->
        (Jvm.with_injection c elemental [ counter_uop kind ~path_index:i ], i + 1))
      (config, 0) Barrier.all_elementals
  in
  Generate.Jvm_platform config

type perturbation = {
  kind : counter_kind;
  overhead : float;
  cv_base : float;
  cv_counted : float;
}

let coefficient_of_variation samples =
  Wmm_util.Stats.std samples /. Wmm_util.Stats.mean samples

let throughputs profile platform ~samples ~seed =
  Array.of_list
    (List.map
       (fun (r : Bench_runner.result) -> r.Bench_runner.throughput)
       (Bench_runner.samples profile platform
          ~seeds:(List.init samples (fun i -> seed + (i * 613)))))

let measure_perturbation ?(samples = 8) ?(seed = 31) arch profile kind =
  let base_platform = Generate.Jvm_platform (Jvm.default arch) in
  let counted_platform = counted_jvm_platform kind (Jvm.default arch) in
  let base = throughputs profile base_platform ~samples ~seed in
  let counted = throughputs profile counted_platform ~samples ~seed in
  {
    kind;
    overhead = 1. -. (Wmm_util.Stats.geometric_mean counted /. Wmm_util.Stats.geometric_mean base);
    cv_base = coefficient_of_variation base;
    cv_counted = coefficient_of_variation counted;
  }
