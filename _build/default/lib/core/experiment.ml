open Wmm_util
open Wmm_isa
open Wmm_costfn
open Wmm_workload

type measure = Throughput | Response_mean | Response_max

let measure_of_profile (p : Profile.t) =
  match p.Profile.measurement with
  | Profile.Throughput -> Throughput
  | Profile.Response _ -> Response_mean

let value_of measure (r : Bench_runner.result) =
  match measure with
  | Throughput -> r.Bench_runner.throughput
  | Response_mean -> 1. /. r.Bench_runner.response_mean_ns
  | Response_max -> 1. /. r.Bench_runner.response_max_ns

let performance_summary ?(samples = 6) ?(warmups = 2) ?(seed = 11) ?measure profile platform =
  let measure = match measure with Some m -> m | None -> measure_of_profile profile in
  (* Warm-up runs are discarded, as the paper does for JIT warm-up;
     for the simulator they only advance the seed sequence, which
     keeps sample seeds aligned between base and test cases. *)
  let seeds = List.init samples (fun i -> seed + ((warmups + i) * 1009)) in
  let results = Bench_runner.samples profile platform ~seeds in
  Stats.summarise (Array.of_list (List.map (value_of measure) results))

let relative_performance ?(samples = 6) ?(seed = 11) ?measure profile ~base ~test =
  let t = performance_summary ~samples ~seed ?measure profile test in
  let b = performance_summary ~samples ~seed ?measure profile base in
  Stats.ratio_summary ~test:t ~base:b

type sweep_point = { iterations : int; cost_ns : float; relative : Stats.summary }

type sweep = {
  benchmark : string;
  arch : Arch.t;
  code_path : string;
  points : sweep_point list;
  fit : Sensitivity.fit;
}

let default_iteration_counts = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512 ]

let sweep ?(samples = 6) ?(seed = 11) ?(light = false) ?iteration_counts ~code_path ~base
    ~inject profile =
  let arch = Generate.platform_arch base in
  let counts =
    match iteration_counts with Some c -> c | None -> default_iteration_counts
  in
  let base_summary = performance_summary ~samples ~seed profile base in
  let points =
    List.map
      (fun n ->
        let cf = Cost_function.make ~light arch n in
        let test_summary = performance_summary ~samples ~seed profile (inject cf) in
        {
          iterations = n;
          cost_ns = Cost_function.standalone_ns cf;
          relative = Stats.ratio_summary ~test:test_summary ~base:base_summary;
        })
      counts
  in
  let xs = Array.of_list (List.map (fun p -> p.cost_ns) points) in
  let ys = Array.of_list (List.map (fun p -> p.relative.Stats.gmean) points) in
  let fit = Sensitivity.fit_k ~xs ~ys in
  { benchmark = profile.Profile.name; arch; code_path; points; fit }

type cell = { benchmark : string; code_path : string; relative : Stats.summary }

let ranking_matrix ?(samples = 3) ?(seed = 23) ?(spin_iterations = 1024) ~paths ~benchmarks ()
    =
  List.concat_map
    (fun ((profile : Profile.t), base_builder) ->
      let arch = Generate.platform_arch (base_builder []) in
      let cf = Cost_function.make arch spin_iterations in
      let base_platform = base_builder [ Cost_function.nop_padding arch cf ] in
      let base = performance_summary ~samples ~seed profile base_platform in
      List.map
        (fun (path_name, path_builder) ->
          let test_platform = path_builder [ Cost_function.uop cf ] in
          let test = performance_summary ~samples ~seed profile test_platform in
          {
            benchmark = profile.Profile.name;
            code_path = path_name;
            relative = Stats.ratio_summary ~test ~base;
          })
        paths)
    benchmarks

let sum_grouped key cells =
  let table = Hashtbl.create 16 in
  List.iter
    (fun cell ->
      let k = key cell in
      let current = try Hashtbl.find table k with Not_found -> 0. in
      Hashtbl.replace table k (current +. cell.relative.Stats.gmean))
    cells;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let sum_by_code_path cells = sum_grouped (fun c -> c.code_path) cells
let sum_by_benchmark cells = sum_grouped (fun c -> c.benchmark) cells

let inferred_cost_ns (fit : Sensitivity.fit) (relative : Stats.summary) =
  Sensitivity.cost_of_change ~k:fit.Sensitivity.k ~p:relative.Stats.gmean

type divergence = { micro_ns : float; macro_ns : float }

let divergence_interesting ?(threshold = 0.5) d =
  let denom = Float.max (abs_float d.micro_ns) 1e-9 in
  abs_float (d.macro_ns -. d.micro_ns) /. denom > threshold
