open Wmm_isa
open Wmm_machine
open Wmm_workload

(** Counter-based instrumentation, and why the paper rejects it.

    Section 3 of the paper considers instrumenting code paths with
    invocation counters and dismisses the approach: counters have an
    unpredictable performance cost, and their memory traffic perturbs
    the memory subsystem of multi-threaded programs - precisely the
    thing being measured.  This module implements counter
    instrumentation over the simulator so the claim can be
    demonstrated quantitatively: see the comparison experiment in
    [Wmm_experiments.Counters]. *)

type counter_kind =
  | Shared_counter  (** One memory counter per code path, shared by all threads
                        (maximum perturbation: the cache line bounces). *)
  | Per_thread_counter  (** Per-thread counter lines (cheaper, still memory traffic). *)
  | Register_counter  (** An ideal register counter (no memory traffic; not
                          generally implementable in real platforms). *)

val counter_uop : counter_kind -> path_index:int -> Uop.t
(** The micro-op of one counter increment; the simulator resolves
    per-core counter lines for [Per_thread_counter]. *)

val counted_jvm_platform :
  counter_kind -> Wmm_platform.Jvm.config -> Generate.platform
(** The JVM platform with a counter increment injected into every
    elemental barrier.

    Note: counter locations live in a reserved range above any
    workload location so they never alias application data. *)

type perturbation = {
  kind : counter_kind;
  overhead : float;  (** Relative slowdown caused by the instrumentation itself. *)
  cv_base : float;  (** Coefficient of variation without counters. *)
  cv_counted : float;  (** With counters: instability added by the probe. *)
}

val measure_perturbation :
  ?samples:int -> ?seed:int -> Arch.t -> Profile.t -> counter_kind -> perturbation
(** Run the benchmark with and without counter instrumentation and
    report the probe's own cost and the change in run-to-run
    stability. *)
