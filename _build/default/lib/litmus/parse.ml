open Wmm_isa

type parsed = { arch_hint : Arch.t option; test : Test.t }

(* ------------------------------------------------------------------ *)
(* Lexical helpers.                                                    *)
(* ------------------------------------------------------------------ *)

let trim = String.trim

let split_on_string sep s =
  let sep_len = String.length sep in
  let rec go start acc =
    match
      let rec find i =
        if i + sep_len > String.length s then None
        else if String.sub s i sep_len = sep then Some i
        else find (i + 1)
      in
      find start
    with
    | Some i -> go (i + sep_len) (String.sub s start (i - start) :: acc)
    | None -> List.rev (String.sub s start (String.length s - start) :: acc)
  in
  go 0 []

let starts_with prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* ------------------------------------------------------------------ *)
(* Location environment: names to indices, allocated on demand.       *)
(* ------------------------------------------------------------------ *)

type env = { mutable names : string list (* reverse order *) }

let location env name =
  let rec index i = function
    | [] ->
        env.names <- env.names @ [ name ];
        i
    | n :: _ when n = name -> i
    | _ :: rest -> index (i + 1) rest
  in
  index 0 env.names

(* ------------------------------------------------------------------ *)
(* Instruction parsing.                                                *)
(* ------------------------------------------------------------------ *)

let parse_reg token =
  let token = trim token in
  if String.length token >= 2 && (token.[0] = 'x' || token.[0] = 'r') then
    int_of_string_opt (String.sub token 1 (String.length token - 1))
  else None

let parse_value token =
  let token = trim token in
  if String.length token >= 2 && token.[0] = '#' then
    int_of_string_opt (String.sub token 1 (String.length token - 1))
  else None

(* An address operand: [&name] or [[xN]]. *)
let parse_address env token =
  let token = trim token in
  if String.length token >= 2 && token.[0] = '&' then
    Some (Instr.Imm (location env (String.sub token 1 (String.length token - 1))))
  else if String.length token >= 3 && token.[0] = '[' && token.[String.length token - 1] = ']'
  then
    match parse_reg (String.sub token 1 (String.length token - 2)) with
    | Some r -> Some (Instr.Reg r)
    | None -> None
  else if
    (* POWER indirect syntax: 0(rN). *)
    String.length token >= 5
    && starts_with "0(" token
    && token.[String.length token - 1] = ')'
  then
    match parse_reg (String.sub token 2 (String.length token - 3)) with
    | Some r -> Some (Instr.Reg r)
    | None -> None
  else None

let parse_operand token =
  match parse_value token with
  | Some v -> Some (Instr.Imm v)
  | None -> ( match parse_reg token with Some r -> Some (Instr.Reg r) | None -> None)

let parse_instr env text =
  let text = trim text in
  let fail () = Error (Printf.sprintf "cannot parse instruction %S" text) in
  let words = String.split_on_char ' ' text |> List.filter (fun w -> w <> "") in
  match words with
  | [] -> Ok None
  | [ "nop" ] -> Ok (Some Instr.Nop)
  | [ "dmb"; "ish" ] -> Ok (Some (Instr.Barrier Instr.Dmb_ish))
  | [ "dmb"; "ishld" ] -> Ok (Some (Instr.Barrier Instr.Dmb_ishld))
  | [ "dmb"; "ishst" ] -> Ok (Some (Instr.Barrier Instr.Dmb_ishst))
  | [ "isb" ] -> Ok (Some (Instr.Barrier Instr.Isb))
  | [ "sync" ] | [ "hwsync" ] -> Ok (Some (Instr.Barrier Instr.Sync))
  | [ "lwsync" ] -> Ok (Some (Instr.Barrier Instr.Lwsync))
  | [ "isync" ] -> Ok (Some (Instr.Barrier Instr.Isync))
  | [ "eieio" ] -> Ok (Some (Instr.Barrier Instr.Eieio))
  | mnemonic :: rest -> (
      let operands = String.concat " " rest |> split_on_string "," |> List.map trim in
      match (mnemonic, operands) with
      | ("str" | "stlr" | "std"), [ src; addr ] -> (
          let order = if mnemonic = "stlr" then Instr.Release else Instr.Plain in
          match (parse_operand src, parse_address env addr) with
          | Some src, Some addr -> Ok (Some (Instr.Store { src; addr; order }))
          | _ -> fail ())
      | ("ldr" | "ldar" | "ld"), [ dst; addr ] -> (
          let order = if mnemonic = "ldar" then Instr.Acquire else Instr.Plain in
          match (parse_reg dst, parse_address env addr) with
          | Some dst, Some addr -> Ok (Some (Instr.Load { dst; addr; order }))
          | _ -> fail ())
      | "mov", [ dst; src ] | "li", [ dst; src ] -> (
          match (parse_reg dst, parse_operand src) with
          | Some dst, Some src -> Ok (Some (Instr.Mov { dst; src }))
          | _ -> fail ())
      | ("eor" | "xor" | "add" | "sub" | "and"), [ dst; a; b ] -> (
          let op =
            match mnemonic with
            | "eor" | "xor" -> Instr.Xor
            | "add" -> Instr.Add
            | "sub" -> Instr.Sub
            | _ -> Instr.And
          in
          match (parse_reg dst, parse_operand a, parse_operand b) with
          | Some dst, Some a, Some b -> Ok (Some (Instr.Op { op; dst; a; b }))
          | _ -> fail ())
      | ("ldxr" | "ldaxr" | "larx"), [ dst; addr ] -> (
          let order = if mnemonic = "ldaxr" then Instr.Acquire else Instr.Plain in
          match (parse_reg dst, parse_address env addr) with
          | Some dst, Some addr -> Ok (Some (Instr.Load_exclusive { dst; addr; order }))
          | _ -> fail ())
      | ("stxr" | "stlxr" | "stcx."), [ status; src; addr ] -> (
          let order = if mnemonic = "stlxr" then Instr.Release else Instr.Plain in
          match (parse_reg status, parse_operand src, parse_address env addr) with
          | Some status, Some src, Some addr ->
              Ok (Some (Instr.Store_exclusive { status; src; addr; order }))
          | _ -> fail ())
      | ("cbnz" | "cbz"), [ src; offset ] -> (
          match (parse_reg src, int_of_string_opt (trim offset)) with
          | Some src, Some offset ->
              if mnemonic = "cbnz" then Ok (Some (Instr.Cbnz { src; offset }))
              else Ok (Some (Instr.Cbz { src; offset }))
          | _ -> fail ())
      | _ -> fail ())

(* ------------------------------------------------------------------ *)
(* Condition parsing.                                                  *)
(* ------------------------------------------------------------------ *)

let parse_condition env text =
  (* "exists ( 1:x1=1 /\ x=2 )" *)
  let text = trim text in
  let text =
    if starts_with "exists" text then trim (String.sub text 6 (String.length text - 6))
    else text
  in
  let text =
    if String.length text >= 2 && text.[0] = '(' && text.[String.length text - 1] = ')' then
      String.sub text 1 (String.length text - 2)
    else text
  in
  let clauses = split_on_string "/\\" text |> List.map trim in
  List.fold_left
    (fun acc clause ->
      match acc with
      | Error _ as e -> e
      | Ok (regs, mem) -> (
          if clause = "" then Ok (regs, mem)
          else
            match String.split_on_char '=' clause with
            | [ lhs; rhs ] -> (
                let lhs = trim lhs and rhs = trim rhs in
                match int_of_string_opt rhs with
                | None -> Error (Printf.sprintf "bad condition value in %S" clause)
                | Some v -> (
                    match String.split_on_char ':' lhs with
                    | [ tid; reg ] -> (
                        match (int_of_string_opt (trim tid), parse_reg reg) with
                        | Some t, Some r -> Ok ((((t, r), v) :: regs), mem)
                        | _ -> Error (Printf.sprintf "bad register condition %S" clause))
                    | [ loc ] -> Ok (regs, (location env (trim loc), v) :: mem)
                    | _ -> Error (Printf.sprintf "bad condition %S" clause)))
            | _ -> Error (Printf.sprintf "bad condition clause %S" clause)))
    (Ok ([], []))
    clauses

(* ------------------------------------------------------------------ *)
(* File structure.                                                     *)
(* ------------------------------------------------------------------ *)

let parse text =
  let lines =
    String.split_on_char '\n' text
    |> List.map (fun l ->
           (* Strip litmus-style comments. *)
           match String.index_opt l '%' with
           | Some i -> String.sub l 0 i
           | None -> l)
    |> List.map trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> Error "empty litmus file"
  | header :: rest -> (
      let arch_hint, name =
        match String.split_on_char ' ' header |> List.filter (fun w -> w <> "") with
        | tag :: name_parts when name_parts <> [] ->
            let hint =
              match String.lowercase_ascii tag with
              | "aarch64" | "arm" | "armv8" -> Some Arch.Armv8
              | "ppc" | "power" | "power7" -> Some Arch.Power7
              | _ -> None
            in
            let name = String.concat " " name_parts in
            if hint = None then (None, header) else (hint, name)
        | _ -> (None, header)
      in
      let env = { names = [] } in
      (* Initial state block: one or more { ... } lines. *)
      let init = ref [] in
      let rec consume_init = function
        | line :: rest when starts_with "{" line ->
            let body = String.concat "" (String.split_on_char '{' line) in
            let body = String.concat "" (String.split_on_char '}' body) in
            List.iter
              (fun binding ->
                match String.split_on_char '=' (trim binding) with
                | [ l; v ] when trim l <> "" -> (
                    match int_of_string_opt (trim v) with
                    | Some v -> init := (location env (trim l), v) :: !init
                    | None -> ())
                | _ -> ())
              (String.split_on_char ';' body);
            consume_init rest
        | rest -> rest
      in
      let rest = consume_init rest in
      (* Thread header (P0 | P1 ...) is optional; code rows end in ;. *)
      let is_thread_header line =
        starts_with "P0" line || starts_with "p0" line
      in
      let code_lines, condition_lines =
        List.partition
          (fun l -> not (starts_with "exists" l || starts_with "forall" l))
          rest
      in
      let code_lines = List.filter (fun l -> not (is_thread_header l)) code_lines in
      let rows =
        List.map
          (fun line ->
            let line =
              if String.length line > 0 && line.[String.length line - 1] = ';' then
                String.sub line 0 (String.length line - 1)
              else line
            in
            String.split_on_char '|' line |> List.map trim)
          code_lines
      in
      match rows with
      | [] -> Error "no code rows"
      | first :: _ -> (
          let thread_count = List.length first in
          if List.exists (fun r -> List.length r <> thread_count) rows then
            Error "ragged thread columns"
          else begin
            let threads = Array.make thread_count [] in
            let errors = ref [] in
            List.iter
              (fun row ->
                List.iteri
                  (fun i cell ->
                    match parse_instr env cell with
                    | Ok None -> ()
                    | Ok (Some instr) -> threads.(i) <- instr :: threads.(i)
                    | Error e -> errors := e :: !errors)
                  row)
              rows;
            match !errors with
            | e :: _ -> Error e
            | [] -> (
                let condition_text = String.concat " " condition_lines in
                match parse_condition env condition_text with
                | Error e -> Error e
                | Ok (regs, mem) ->
                    let test =
                      Test.make ~name ~description:("parsed: " ^ name)
                        ~locations:(Array.of_list env.names)
                        ~init:!init
                        ~threads:
                          (Array.to_list
                             (Array.map (fun l -> Array.of_list (List.rev l)) threads))
                        ~condition:(List.rev regs) ~mem_condition:(List.rev mem)
                        ~expected:[] ()
                    in
                    Ok { arch_hint; test })
          end))

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error e -> Error e

(* ------------------------------------------------------------------ *)
(* Printing.                                                           *)
(* ------------------------------------------------------------------ *)

let to_text ?(arch = Arch.Armv8) (test : Test.t) =
  let p = test.Test.program in
  let names l = Program.location_name p l in
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer
    (Printf.sprintf "%s %s\n"
       (match arch with Arch.Armv8 -> "AArch64" | Arch.Power7 -> "PPC")
       test.Test.name);
  Buffer.add_string buffer
    (Printf.sprintf "{ %s }\n"
       (String.concat "; "
          (List.map
             (fun l -> Printf.sprintf "%s=%d" (names l) (Program.initial_value p l))
             (Program.locations p))));
  let columns =
    Array.map (fun thread -> Array.to_list (Array.map (Asm.instr_named arch names) thread))
      p.Program.threads
  in
  let widths =
    Array.map (fun c -> List.fold_left (fun acc s -> max acc (String.length s)) 4 c) columns
  in
  let height = Array.fold_left (fun acc c -> max acc (List.length c)) 0 columns in
  Buffer.add_string buffer
    (String.concat " | "
       (Array.to_list
          (Array.mapi
             (fun i w ->
               let label = "P" ^ string_of_int i in
               label ^ String.make (max 0 (w - String.length label)) ' ')
             widths)));
  Buffer.add_string buffer " ;\n";
  for row = 0 to height - 1 do
    let cells =
      Array.to_list
        (Array.mapi
           (fun i c ->
             let cell = match List.nth_opt c row with Some s -> s | None -> "" in
             cell ^ String.make (max 0 (widths.(i) - String.length cell)) ' ')
           columns)
    in
    Buffer.add_string buffer (String.concat " | " cells);
    Buffer.add_string buffer " ;\n"
  done;
  let clauses =
    List.map (fun ((t, r), v) -> Printf.sprintf "%d:x%d=%d" t r v) test.Test.condition
    @ List.map (fun (l, v) -> Printf.sprintf "%s=%d" (names l) v) test.Test.mem_condition
  in
  Buffer.add_string buffer
    (Printf.sprintf "exists (%s)\n" (String.concat " /\\ " clauses));
  Buffer.contents buffer
