open Wmm_model

(** The standard litmus test battery.

    Classic shapes (SB, MP, LB, S, R, 2+2W, WRC, IRIW, ISA2, CoRR,
    CoWW) plus fenced and dependency variants for both ARMv8 and
    POWER, each annotated with the verdicts of the axiomatic models.
    Verdicts follow the published tables of Alglave et al. ("Herding
    cats") and the ARMv8 memory model: e.g. IRIW with address
    dependencies is forbidden on (other-multi-copy-atomic) ARMv8 but
    allowed on POWER. *)

val all : Test.t list

val coherence : Test.t list
(** Same-location sanity tests, forbidden under every model. *)

val common : Test.t list
(** Unfenced shapes meaningful under every model. *)

val atomics : Test.t list
(** Load-exclusive / store-exclusive shapes: read-modify-write
    atomicity holds under every model. *)

val arm : Test.t list
(** Tests using ARMv8 barriers / load-acquire / store-release. *)

val power : Test.t list
(** Tests using POWER sync / lwsync / isync. *)

val for_model : Axiomatic.model -> Test.t list
(** The tests carrying an expectation for the given model. *)

val by_name : string -> Test.t option

val machine_config_for : Test.t -> Wmm_machine.Relaxed.config
(** The operational machine configuration appropriate for a test
    (the relaxed machine; exposed for the runner). *)
