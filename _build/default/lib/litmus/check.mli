open Wmm_model
open Wmm_machine

(** Run litmus tests on the operational machine and compare with the
    axiomatic verdicts. *)

type verdict = {
  test : Test.t;
  model : Axiomatic.model;
  axiomatic_allowed : bool;
      (** Whether any model-consistent candidate execution satisfies
          the test condition. *)
  expected : bool option;  (** The library's annotation, if any. *)
  observed : bool;  (** Whether the operational machine reached it. *)
  observations : int;  (** How many runs / states reached it. *)
  total : int;  (** Runs or states explored. *)
}

val axiomatic_allowed : Axiomatic.model -> Test.t -> bool

val run_random :
  ?iterations:int -> ?seed:int -> Axiomatic.model -> Relaxed.config -> Test.t -> verdict
(** Randomly scheduled executions (default 2000). *)

val run_exhaustive :
  ?max_states:int -> Axiomatic.model -> Relaxed.config -> Test.t -> verdict
(** Exhaustive state-space exploration of the operational machine. *)

val sound : verdict -> bool
(** No forbidden outcome was observed, and the axiomatic verdict
    matches the library's annotation when present.  Because the
    operational machine is deliberately less permissive than the
    axiomatic models (it never speculates), [observed = false] with
    [axiomatic_allowed = true] is sound (a coverage gap, not a
    bug). *)

val describe : verdict -> string
