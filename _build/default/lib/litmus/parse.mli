open Wmm_isa

(** A parser for a litmus7-style text format, so tests can be written
    in files and run from the CLI:

    {v
    AArch64 MP+dmb+addr
    { x=0; y=0 }
    P0           | P1             ;
    str #1, &x   | ldr x1, &y     ;
    dmb ish      | eor x3, x1, x1 ;
    str #1, &y   | ldr x4, [x3]   ;
    exists (1:x1=1 /\ 1:x4=0 /\ x=1)
    v}

    The first line is an architecture tag (AArch64/ARM or PPC/POWER -
    informational) and the test name.  The initial-state block lists
    locations and starting values; locations not mentioned but used
    in the code are allocated in order of appearance.  Threads are
    columns separated by [|], each row terminated by [;].  The final
    [exists] clause combines register conditions ([thread:reg=value])
    and final-memory conditions ([location=value]) with [/\ ].

    Instructions: [str]/[stlr] (#imm or xN source, [&loc] or [\[xN\]]
    address), [ldr]/[ldar], [dmb ish|ishld|ishst], [isb], [sync],
    [lwsync], [isync], [eieio], [mov xD, #v], [eor]/[add]/[and]/[sub]
    (register or #imm operands), [cbnz]/[cbz xN, +off], [nop]. *)

type parsed = {
  arch_hint : Arch.t option;
  test : Test.t;  (** With an empty [expected] list: the file carries
                      no model annotations. *)
}

val parse : string -> (parsed, string) result
(** Parse the full text of a litmus file.  Errors carry a line number
    and description. *)

val parse_file : string -> (parsed, string) result

val to_text : ?arch:Arch.t -> Test.t -> string
(** Render a test back to the file format ([parse] of the result
    yields an equivalent test; fences print in the syntax of the
    architecture they belong to). *)
