lib/litmus/parse.mli: Arch Test Wmm_isa
