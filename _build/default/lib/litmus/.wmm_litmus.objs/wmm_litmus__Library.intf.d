lib/litmus/library.mli: Axiomatic Test Wmm_machine Wmm_model
