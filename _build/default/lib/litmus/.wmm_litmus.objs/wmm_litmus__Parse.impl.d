lib/litmus/parse.ml: Arch Array Asm Buffer In_channel Instr List Printf Program String Test Wmm_isa
