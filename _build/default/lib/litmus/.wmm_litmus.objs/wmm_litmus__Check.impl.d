lib/litmus/check.ml: Axiomatic Enumerate List Printf Relaxed Test Wmm_machine Wmm_model
