lib/litmus/library.ml: Array Axiomatic List Test Wmm_isa Wmm_machine Wmm_model
