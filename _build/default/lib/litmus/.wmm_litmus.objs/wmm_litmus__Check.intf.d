lib/litmus/check.mli: Axiomatic Relaxed Test Wmm_machine Wmm_model
