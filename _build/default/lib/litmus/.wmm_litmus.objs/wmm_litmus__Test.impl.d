lib/litmus/test.ml: Axiomatic Instr List Program Wmm_isa Wmm_model
