lib/litmus/test.mli: Axiomatic Instr Program Wmm_isa Wmm_model
