open Wmm_isa
open Wmm_model

type condition = ((int * Instr.reg) * Instr.value) list

type t = {
  name : string;
  description : string;
  program : Program.t;
  condition : condition;
  mem_condition : (Instr.loc * Instr.value) list;
  expected : (Axiomatic.model * bool) list;
}

let make ~name ~description ?(locations = [| "x"; "y"; "z"; "w" |]) ?(init = []) ~threads
    ~condition ?(mem_condition = []) ~expected () =
  let program = Program.make ~location_names:locations ~init ~name threads in
  (match Program.validate program with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Litmus test " ^ name ^ ": " ^ msg));
  { name; description; program; condition; mem_condition; expected }

let condition_matches condition registers =
  List.for_all
    (fun (key, v) ->
      match List.assoc_opt key registers with Some v' -> v = v' | None -> false)
    condition

let expected_under t model = List.assoc_opt model t.expected

let str ~value ~loc =
  Instr.Store { src = Instr.Imm value; addr = Instr.Imm loc; order = Instr.Plain }

let str_rel ~value ~loc =
  Instr.Store { src = Instr.Imm value; addr = Instr.Imm loc; order = Instr.Release }

let str_reg ~src ~loc =
  Instr.Store { src = Instr.Reg src; addr = Instr.Imm loc; order = Instr.Plain }

let ldr ~dst ~loc = Instr.Load { dst; addr = Instr.Imm loc; order = Instr.Plain }

let ldr_acq ~dst ~loc = Instr.Load { dst; addr = Instr.Imm loc; order = Instr.Acquire }

let ldr_reg ~dst ~addr = Instr.Load { dst; addr = Instr.Reg addr; order = Instr.Plain }

let xor_self ~dst ~src = Instr.Op { op = Instr.Xor; dst; a = Instr.Reg src; b = Instr.Reg src }

let addi ~dst ~src n = Instr.Op { op = Instr.Add; dst; a = Instr.Reg src; b = Instr.Imm n }

let dmb = Instr.Barrier Instr.Dmb_ish
let dmb_ld = Instr.Barrier Instr.Dmb_ishld
let dmb_st = Instr.Barrier Instr.Dmb_ishst
let isb_i = Instr.Barrier Instr.Isb
let sync_i = Instr.Barrier Instr.Sync
let lwsync_i = Instr.Barrier Instr.Lwsync
let isync_i = Instr.Barrier Instr.Isync

let ctrl_then r = [ Instr.Cbnz { src = r; offset = 0 } ]

let ldxr ~dst ~loc =
  Instr.Load_exclusive { dst; addr = Instr.Imm loc; order = Instr.Plain }

let stxr ~status ~src ~loc =
  Instr.Store_exclusive { status; src = Instr.Reg src; addr = Instr.Imm loc; order = Instr.Plain }
