open Wmm_isa
open Wmm_model

(** Litmus tests: a program, an interesting final condition, and the
    expected verdict of each axiomatic model. *)

type condition = ((int * Instr.reg) * Instr.value) list
(** Partial final-state predicate: thread-register/value pairs that
    must all hold. *)

type t = {
  name : string;
  description : string;
  program : Program.t;
  condition : condition;  (** The "exists" clause over registers. *)
  mem_condition : (Instr.loc * Instr.value) list;
      (** Additional final-memory requirements of the "exists"
          clause (used by tests like S, R and 2+2W). *)
  expected : (Axiomatic.model * bool) list;
      (** Whether the condition is reachable under each model;
          models not listed are unspecified (used for tests that only
          make sense on one architecture). *)
}

val make :
  name:string ->
  description:string ->
  ?locations:string array ->
  ?init:(Instr.loc * Instr.value) list ->
  threads:Instr.t array list ->
  condition:condition ->
  ?mem_condition:(Instr.loc * Instr.value) list ->
  expected:(Axiomatic.model * bool) list ->
  unit ->
  t

val condition_matches : condition -> ((int * Instr.reg) * Instr.value) list -> bool
(** Does a complete register assignment satisfy the condition? *)

val expected_under : t -> Axiomatic.model -> bool option

(** Instruction-building helpers used by the test library. *)

val str : value:Instr.value -> loc:Instr.loc -> Instr.t
val str_rel : value:Instr.value -> loc:Instr.loc -> Instr.t
(** Store-release ([stlr]). *)

val str_reg : src:Instr.reg -> loc:Instr.loc -> Instr.t
val ldr : dst:Instr.reg -> loc:Instr.loc -> Instr.t

val ldr_acq : dst:Instr.reg -> loc:Instr.loc -> Instr.t
(** Load-acquire ([ldar]). *)

val ldr_reg : dst:Instr.reg -> addr:Instr.reg -> Instr.t
val xor_self : dst:Instr.reg -> src:Instr.reg -> Instr.t
(** [dst := src xor src]: the classic artificial-dependency idiom. *)

val addi : dst:Instr.reg -> src:Instr.reg -> Instr.value -> Instr.t
val dmb : Instr.t
val dmb_ld : Instr.t
val dmb_st : Instr.t
val isb_i : Instr.t
val sync_i : Instr.t
val lwsync_i : Instr.t
val isync_i : Instr.t
val ctrl_then : Instr.reg -> Instr.t list
(** A control dependency on the register: compare-and-branch over
    nothing ([cbnz r, +0]). *)

val ldxr : dst:Instr.reg -> loc:Instr.loc -> Instr.t
(** Load-exclusive (plain). *)

val stxr : status:Instr.reg -> src:Instr.reg -> loc:Instr.loc -> Instr.t
(** Store-exclusive of a register value. *)
