type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64 is used only to expand the user seed into the four
   xoshiro256** state words, as recommended by the xoshiro authors:
   it guarantees the state is never all-zero and decorrelates nearby
   seeds. *)
let splitmix64 state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let u = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 u;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (int64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling removes modulo bias; the retry probability is
     negligible for the bounds used here. *)
  let rec go () =
    let r = bits t in
    let v = r mod bound in
    if r - v > (max_int lsr 2) * 4 - bound then go () else v
  in
  go ()

let unit_float t =
  (* 53 high bits -> uniform double in [0, 1). *)
  let x = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float x *. 0x1.0p-53

let float t bound = unit_float t *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let gaussian t ~mean ~std =
  let rec nonzero () =
    let u = unit_float t in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = unit_float t in
  mean +. (std *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  let rec nonzero () =
    let u = unit_float t in
    if u > 0. then u else nonzero ()
  in
  -.log (nonzero ()) /. rate

let pareto t ~shape ~scale =
  if shape <= 0. || scale <= 0. then invalid_arg "Rng.pareto: parameters must be positive";
  let rec nonzero () =
    let u = unit_float t in
    if u > 0. then u else nonzero ()
  in
  scale /. (nonzero () ** (1. /. shape))

let lognormal t ~mu ~sigma = exp (gaussian t ~mean:mu ~std:sigma)

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
