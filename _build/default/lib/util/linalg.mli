(** Small dense linear algebra for the curve fitter.

    Matrices are [float array array] in row-major order.  Sizes here
    are tiny (the sensitivity model has one parameter; nothing in the
    suite exceeds a handful), so clarity beats blocking. *)

type matrix = float array array

val make : int -> int -> float -> matrix
(** [make rows cols v] is a fresh [rows * cols] matrix filled with
    [v]. *)

val identity : int -> matrix

val copy : matrix -> matrix

val dims : matrix -> int * int
(** (rows, cols).  Raises on ragged input. *)

val transpose : matrix -> matrix

val mat_mul : matrix -> matrix -> matrix

val mat_vec : matrix -> float array -> float array

val dot : float array -> float array -> float

val solve : matrix -> float array -> float array
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting.  Raises [Failure] on a (numerically) singular matrix.
    [a] and [b] are not modified. *)

val invert : matrix -> matrix
(** Matrix inverse via [solve] against the identity columns. *)
