type matrix = float array array

let make rows cols v = Array.init rows (fun _ -> Array.make cols v)

let identity n =
  Array.init n (fun i -> Array.init n (fun j -> if i = j then 1. else 0.))

let copy m = Array.map Array.copy m

let dims m =
  let rows = Array.length m in
  if rows = 0 then (0, 0)
  else begin
    let cols = Array.length m.(0) in
    Array.iter
      (fun row -> if Array.length row <> cols then invalid_arg "Linalg.dims: ragged matrix")
      m;
    (rows, cols)
  end

let transpose m =
  let rows, cols = dims m in
  Array.init cols (fun j -> Array.init rows (fun i -> m.(i).(j)))

let mat_mul a b =
  let ra, ca = dims a and rb, cb = dims b in
  if ca <> rb then invalid_arg "Linalg.mat_mul: dimension mismatch";
  Array.init ra (fun i ->
      Array.init cb (fun j ->
          let acc = ref 0. in
          for k = 0 to ca - 1 do
            acc := !acc +. (a.(i).(k) *. b.(k).(j))
          done;
          !acc))

let mat_vec a v =
  let ra, ca = dims a in
  if ca <> Array.length v then invalid_arg "Linalg.mat_vec: dimension mismatch";
  Array.init ra (fun i ->
      let acc = ref 0. in
      for k = 0 to ca - 1 do
        acc := !acc +. (a.(i).(k) *. v.(k))
      done;
      !acc)

let dot a b =
  if Array.length a <> Array.length b then invalid_arg "Linalg.dot: dimension mismatch";
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let solve a b =
  let n, cols = dims a in
  if n <> cols then invalid_arg "Linalg.solve: matrix not square";
  if n <> Array.length b then invalid_arg "Linalg.solve: rhs dimension mismatch";
  let m = copy a and x = Array.copy b in
  for col = 0 to n - 1 do
    (* Partial pivoting: swap in the row with the largest magnitude
       entry in this column to bound the growth factor. *)
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if abs_float m.(row).(col) > abs_float m.(!pivot).(col) then pivot := row
    done;
    if abs_float m.(!pivot).(col) < 1e-300 then failwith "Linalg.solve: singular matrix";
    if !pivot <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!pivot);
      m.(!pivot) <- tmp;
      let tmp = x.(col) in
      x.(col) <- x.(!pivot);
      x.(!pivot) <- tmp
    end;
    for row = col + 1 to n - 1 do
      let factor = m.(row).(col) /. m.(col).(col) in
      if factor <> 0. then begin
        for k = col to n - 1 do
          m.(row).(k) <- m.(row).(k) -. (factor *. m.(col).(k))
        done;
        x.(row) <- x.(row) -. (factor *. x.(col))
      end
    done
  done;
  for row = n - 1 downto 0 do
    let acc = ref x.(row) in
    for k = row + 1 to n - 1 do
      acc := !acc -. (m.(row).(k) *. x.(k))
    done;
    x.(row) <- !acc /. m.(row).(row)
  done;
  x

let invert a =
  let n, cols = dims a in
  if n <> cols then invalid_arg "Linalg.invert: matrix not square";
  let columns =
    Array.init n (fun j -> solve a (Array.init n (fun i -> if i = j then 1. else 0.)))
  in
  Array.init n (fun i -> Array.init n (fun j -> columns.(j).(i)))
