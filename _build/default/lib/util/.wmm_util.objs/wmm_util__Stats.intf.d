lib/util/stats.mli:
