lib/util/linalg.mli:
