lib/util/table.mli:
