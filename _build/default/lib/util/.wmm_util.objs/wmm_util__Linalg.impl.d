lib/util/linalg.ml: Array
