lib/util/fit.ml: Array Float Linalg Stats
