lib/util/rng.mli:
