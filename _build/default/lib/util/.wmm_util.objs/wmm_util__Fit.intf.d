lib/util/fit.mli: Linalg
