(** Deterministic pseudo-random number generation.

    All randomness in the simulator and the workload generators flows
    through this module so that every experiment is reproducible from
    a single integer seed.  The generator is xoshiro256** seeded via
    splitmix64, which is fast, has a 2^256 - 1 period and passes the
    usual statistical test batteries; quality matters here because noise
    models feed directly into confidence-interval computations. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed.  Equal seeds
    yield equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing
    [t].  Use one split stream per simulated core / workload thread so
    adding a consumer does not perturb the others' streams. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing it. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** Next non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be
    positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val unit_float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val gaussian : t -> mean:float -> std:float -> float
(** Normal deviate via the Box-Muller transform. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate (1/mean). *)

val pareto : t -> shape:float -> scale:float -> float
(** Heavy-tailed Pareto deviate; used for SMT-interference noise
    (small [shape] means heavier tail). *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal deviate: [exp (gaussian mu sigma)]. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)
