type align = Left | Right

type t = { headers : string array; aligns : align array; mutable rows : string array list }

let create ?aligns headers =
  let headers = Array.of_list headers in
  let aligns =
    match aligns with
    | Some a ->
        if List.length a <> Array.length headers then
          invalid_arg "Table.create: aligns/headers length mismatch";
        Array.of_list a
    | None -> Array.init (Array.length headers) (fun i -> if i = 0 then Left else Right)
  in
  { headers; aligns; rows = [] }

let add_row t cells =
  let n = Array.length t.headers in
  if List.length cells > n then invalid_arg "Table.add_row: more cells than headers";
  let row = Array.make n "" in
  List.iteri (fun i c -> row.(i) <- c) cells;
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let n = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  List.iter
    (fun row -> Array.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row)
    rows;
  let pad i cell =
    let w = widths.(i) in
    let gap = String.make (w - String.length cell) ' ' in
    match t.aligns.(i) with Left -> cell ^ gap | Right -> gap ^ cell
  in
  let rtrim s =
    let len = ref (String.length s) in
    while !len > 0 && s.[!len - 1] = ' ' do
      decr len
    done;
    String.sub s 0 !len
  in
  let line cells = rtrim (String.concat "  " (List.init n (fun i -> pad i cells.(i)))) in
  let rule = Array.map (fun w -> String.make w '-') widths in
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (line t.headers);
  Buffer.add_char buffer '\n';
  Buffer.add_string buffer (line rule);
  List.iter
    (fun row ->
      Buffer.add_char buffer '\n';
      Buffer.add_string buffer (line row))
    rows;
  Buffer.contents buffer

let print t =
  print_string (render t);
  print_newline ()

let float_cell ?(decimals = 4) v = Printf.sprintf "%.*f" decimals v

let percent_cell ?(decimals = 1) v =
  let pct = v *. 100. in
  if pct >= 0. then Printf.sprintf "+%.*f%%" decimals pct
  else Printf.sprintf "%.*f%%" decimals pct

let scientific_cell v = Printf.sprintf "%.3e" v

let value_pm_percent ~value ~percent = Printf.sprintf "%.5f +- %.1f%%" value percent

let series ~name ~xs ~ys =
  if Array.length xs <> Array.length ys then invalid_arg "Table.series: xs/ys length mismatch";
  let buffer = Buffer.create 128 in
  Array.iteri
    (fun i x -> Buffer.add_string buffer (Printf.sprintf "%s\t%g\t%g\n" name x ys.(i)))
    xs;
  Buffer.contents buffer

let sparkline values =
  if Array.length values = 0 then ""
  else begin
    let glyphs = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                    "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |] in
    let lo = Array.fold_left min values.(0) values in
    let hi = Array.fold_left max values.(0) values in
    let span = if hi -. lo < 1e-12 then 1. else hi -. lo in
    let buffer = Buffer.create (Array.length values * 3) in
    Array.iter
      (fun v ->
        let idx = int_of_float ((v -. lo) /. span *. 8.) in
        Buffer.add_string buffer glyphs.(max 0 (min 8 idx)))
      values;
    Buffer.contents buffer
  end
