type result = {
  params : float array;
  std_errors : float array;
  covariance : Linalg.matrix;
  residual_ss : float;
  iterations : int;
  converged : bool;
}

let residuals f params xs ys =
  Array.init (Array.length xs) (fun i -> ys.(i) -. f params xs.(i))

let sum_squares r = Array.fold_left (fun acc v -> acc +. (v *. v)) 0. r

(* Central-difference Jacobian of the residual vector with respect to
   the parameters.  The step scales with the parameter magnitude so
   tiny sensitivities (k ~ 1e-3) are differentiated accurately. *)
let jacobian f params xs =
  let n = Array.length xs and m = Array.length params in
  let j = Linalg.make n m 0. in
  for p = 0 to m - 1 do
    let h = Float.max 1e-10 (1e-6 *. abs_float params.(p)) in
    let plus = Array.copy params and minus = Array.copy params in
    plus.(p) <- params.(p) +. h;
    minus.(p) <- params.(p) -. h;
    for i = 0 to n - 1 do
      (* Residual is y - f, so d(residual)/dp = -df/dp. *)
      j.(i).(p) <- -.(f plus xs.(i) -. f minus xs.(i)) /. (2. *. h)
    done
  done;
  j

let covariance_of f params xs ys =
  let n = Array.length xs and m = Array.length params in
  let j = jacobian f params xs in
  let jt = Linalg.transpose j in
  let jtj = Linalg.mat_mul jt j in
  let rss = sum_squares (residuals f params xs ys) in
  let dof = max 1 (n - m) in
  let s2 = rss /. float_of_int dof in
  match Linalg.invert jtj with
  | inv -> Array.map (Array.map (fun v -> v *. s2)) inv
  | exception Failure _ -> Linalg.make m m nan

let curve_fit ?(max_iterations = 200) ?(tolerance = 1e-12) ~f ~xs ~ys ~init () =
  let n = Array.length xs and m = Array.length init in
  if n <> Array.length ys then invalid_arg "Fit.curve_fit: xs/ys length mismatch";
  if n < m then invalid_arg "Fit.curve_fit: fewer points than parameters";
  let params = Array.copy init in
  let lambda = ref 1e-3 in
  let rss = ref (sum_squares (residuals f params xs ys)) in
  let iterations = ref 0 in
  let converged = ref false in
  while (not !converged) && !iterations < max_iterations do
    incr iterations;
    let j = jacobian f params xs in
    let r = residuals f params xs ys in
    let jt = Linalg.transpose j in
    let jtj = Linalg.mat_mul jt j in
    let g = Linalg.mat_vec jt r in
    (* Negative gradient of 1/2 rss is J^T r with our sign convention
       for the residual Jacobian; the LM step solves
       (J^T J + lambda diag(J^T J)) delta = J^T r. *)
    let step_ok = ref false in
    let attempts = ref 0 in
    while (not !step_ok) && !attempts < 30 do
      incr attempts;
      let damped = Linalg.copy jtj in
      for i = 0 to m - 1 do
        let d = jtj.(i).(i) in
        damped.(i).(i) <- d +. (!lambda *. if d > 0. then d else 1.)
      done;
      match Linalg.solve damped g with
      | delta ->
          let trial = Array.mapi (fun i p -> p -. delta.(i)) params in
          let trial_rss = sum_squares (residuals f trial xs ys) in
          if Float.is_finite trial_rss && trial_rss <= !rss then begin
            let improvement = (!rss -. trial_rss) /. Float.max !rss 1e-300 in
            Array.blit trial 0 params 0 m;
            rss := trial_rss;
            lambda := Float.max 1e-12 (!lambda /. 10.);
            step_ok := true;
            if improvement < tolerance then converged := true
          end
          else lambda := !lambda *. 10.
      | exception Failure _ -> lambda := !lambda *. 10.
    done;
    if not !step_ok then converged := true
  done;
  let covariance = covariance_of f params xs ys in
  let std_errors =
    Array.init m (fun i ->
        let v = covariance.(i).(i) in
        if Float.is_finite v && v >= 0. then sqrt v else nan)
  in
  {
    params;
    std_errors;
    covariance;
    residual_ss = !rss;
    iterations = !iterations;
    converged = !converged;
  }

let relative_error_percent result i =
  100. *. Stats.relative_std_error ~value:result.params.(i) ~error:result.std_errors.(i)
