lib/machine/timing.ml: Arch Wmm_isa
