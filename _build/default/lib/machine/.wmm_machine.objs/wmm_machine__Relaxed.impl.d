lib/machine/relaxed.ml: Array Hashtbl Instr Int List Map Marshal Option Program Rng Wmm_isa Wmm_util
