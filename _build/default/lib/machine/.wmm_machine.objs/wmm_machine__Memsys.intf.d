lib/machine/memsys.mli: Timing
