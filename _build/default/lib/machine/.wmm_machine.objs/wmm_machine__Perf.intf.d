lib/machine/perf.mli: Arch Timing Uop Wmm_isa
