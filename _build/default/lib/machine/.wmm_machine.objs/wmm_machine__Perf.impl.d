lib/machine/perf.ml: Arch Array Float List Memsys Rng Timing Uop Wmm_isa Wmm_util
