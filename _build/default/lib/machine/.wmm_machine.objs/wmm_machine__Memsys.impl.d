lib/machine/memsys.ml: Array Timing
