lib/machine/timing.mli: Arch Wmm_isa
