lib/machine/uop.mli: Format
