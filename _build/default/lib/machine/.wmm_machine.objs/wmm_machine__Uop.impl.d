lib/machine/uop.ml: Format
