lib/machine/relaxed.mli: Instr Program Wmm_isa
