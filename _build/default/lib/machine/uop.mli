(** Micro-operations consumed by the performance simulator.

    Platform code paths (barrier implementations, kernel macros) and
    workload generators compile down to sequences of these.  The
    fence constructors are *semantic* categories; the per-arch
    instruction selection happens in the platform layer and the
    per-arch cost in {!Timing}. *)

type t =
  | Busy of int  (** Pure computation, in cycles. *)
  | Load of int  (** Location id. *)
  | Store of int
  | Load_acquire of int  (** ldar / ld+isync idiom. *)
  | Store_release of int  (** stlr / lwsync+st idiom. *)
  | Fence_full  (** dmb ish / hwsync: drains the store buffer. *)
  | Fence_store  (** dmb ishst / eieio: store-order marker. *)
  | Fence_load  (** dmb ishld. *)
  | Fence_lw  (** POWER lwsync. *)
  | Fence_pipeline  (** isb / isync: pipeline flush. *)
  | Branch  (** A conditional branch (ctrl-dependency strategies). *)
  | Spin of int  (** Injected cost function, loop iterations. *)
  | Spin_light of int  (** Scratch-register variant (no stack spill). *)
  | Nops of int  (** Injected nop padding. *)
  | Counter_shared of int
      (** Invocation-counter increment in a shared line (one per code
          path, contended by all cores). *)
  | Counter_private of int
      (** Invocation-counter increment in a per-core line. *)

val pp : Format.formatter -> t -> unit

val is_fence : t -> bool

val is_memory : t -> bool
