open Wmm_isa
type t = {
  arch : Arch.t;
  l1_hit_cycles : int;
  l2_hit_cycles : int;
  memory_cycles : int;
  remote_transfer_cycles : int;
  bus_occupancy_cycles : int;
  cache_lines : int;
  line_shift : int;
  sb_capacity : int;
  sb_drain_owned_cycles : int;
  sb_drain_shared_cycles : int;
  full_fence_cycles : int;
  store_fence_cycles : int;
  load_fence_cycles : int;
  lwsync_cycles : int;
  pipeline_flush_cycles : int;
  acquire_extra_cycles : int;
  release_extra_cycles : int;
  release_drain_threshold : int;
  release_drain_penalty_cycles : int;
  release_fence_interaction_cycles : int;
  branch_cycles : int;
  branch_mispredict_cycles : int;
  branch_mispredict_rate : float;
  spin_startup_cycles : int;
  spin_startup_light_cycles : int;
  spin_per_iteration_cycles : int;
  spin_overlap_cycles : int;
  spin_adjacent_fraction : float;
  nops_per_cycle : int;
  nop_disruption_cycles : int;
}

(* X-Gene 1 flavoured ARMv8 @ 2.4 GHz (0.417 ns/cycle). *)
let armv8 =
  {
    arch = Arch.Armv8;
    l1_hit_cycles = 3;
    l2_hit_cycles = 14;
    memory_cycles = 48;
    remote_transfer_cycles = 30;
    bus_occupancy_cycles = 2;
    cache_lines = 256;
    line_shift = 3;
    sb_capacity = 12;
    sb_drain_owned_cycles = 4;
    sb_drain_shared_cycles = 18;
    (* The dmb variants share a near-identical base cost: the paper
       finds ARMv8 microbenchmarks cannot tell them apart; only macro
       context (the drain wait of dmb ish) separates them. *)
    full_fence_cycles = 11;  (* dmb ish: ~4.6 ns base, plus the drain wait *)
    store_fence_cycles = 9;  (* dmb ishst *)
    load_fence_cycles = 9;  (* dmb ishld *)
    lwsync_cycles = 11;  (* unused on ARM; mirrors full fence *)
    pipeline_flush_cycles = 52;  (* isb: ~21.7 ns *)
    acquire_extra_cycles = 14;  (* ldar on X-Gene is markedly slower than ldr *)
    release_extra_cycles = 18;  (* stlr likewise; both serialise the pipeline *)
    release_drain_threshold = 11;
    release_drain_penalty_cycles = 12;
    release_fence_interaction_cycles = 12;
    branch_cycles = 2;
    branch_mispredict_cycles = 24;
    branch_mispredict_rate = 0.30;
    spin_startup_cycles = 9;  (* stp + mov + ldp around the loop *)
    spin_startup_light_cycles = 3;  (* scratch register: just the mov *)
    spin_per_iteration_cycles = 2;  (* subs + bne, loop-carried dependency *)
    spin_overlap_cycles = 6;
    spin_adjacent_fraction = 0.05;
    nops_per_cycle = 3;
    nop_disruption_cycles = 4;
  }

(* POWER7 @ 3.7 GHz (0.270 ns/cycle). *)
let power7 =
  {
    arch = Arch.Power7;
    l1_hit_cycles = 2;
    l2_hit_cycles = 12;
    memory_cycles = 60;
    remote_transfer_cycles = 40;
    bus_occupancy_cycles = 4;
    cache_lines = 256;
    line_shift = 3;
    sb_capacity = 16;
    sb_drain_owned_cycles = 4;
    sb_drain_shared_cycles = 22;
    full_fence_cycles = 70;  (* hwsync: 18.9 ns measured by microbenchmark *)
    store_fence_cycles = 8;  (* eieio-style *)
    load_fence_cycles = 10;
    lwsync_cycles = 23;  (* 6.2 ns: the paper measures 6.1 ns *)
    pipeline_flush_cycles = 60;  (* isync *)
    acquire_extra_cycles = 12;
    release_extra_cycles = 10;
    release_drain_threshold = 2;
    release_drain_penalty_cycles = 10;
    release_fence_interaction_cycles = 10;
    branch_cycles = 2;
    branch_mispredict_cycles = 26;
    branch_mispredict_rate = 0.30;
    spin_startup_cycles = 11;  (* std + li + ld around the loop *)
    spin_startup_light_cycles = 4;
    spin_per_iteration_cycles = 2;  (* addi + cmpwi + bne with forwarding *)
    spin_overlap_cycles = 6;
    spin_adjacent_fraction = 0.05;
    nops_per_cycle = 3;
    nop_disruption_cycles = 1;
  }

let for_arch = function Arch.Armv8 -> armv8 | Arch.Power7 -> power7

let spin_raw_cycles t ~light n =
  let startup = if light then t.spin_startup_light_cycles else t.spin_startup_cycles in
  startup + (n * t.spin_per_iteration_cycles)

let spin_cycles t ~light n =
  (* In a timing-loop microbenchmark, short loops cannot be resolved
     below the pipeline refill floor: the measured time flattens for
     small N (paper Fig. 4). *)
  let floor_cycles = 3 * t.spin_overlap_cycles in
  max floor_cycles (spin_raw_cycles t ~light n)

let spin_injected_cycles t ~light n =
  (* Injected inline, a short loop overlaps with neighbouring
     instructions; only time beyond the overlap window is visible. *)
  max 0 (spin_raw_cycles t ~light n - t.spin_overlap_cycles)

let nop_cycles t n =
  if n <= 0 then 0
  else t.nop_disruption_cycles + ((n + t.nops_per_cycle - 1) / t.nops_per_cycle)

let ns_of_cycles t cycles = Arch.ns_of_cycles t.arch cycles
let cycles_of_ns t ns = Arch.cycles_of_ns t.arch ns
