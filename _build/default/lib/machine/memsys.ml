(* Cache line states of a simple invalidation protocol. *)
type state = Invalid | Shared | Exclusive

type t = {
  timing : Timing.t;
  cores : int;
  (* tags.(core).(set) is the line number held in that slot. *)
  tags : int array array;
  states : state array array;
  mutable bus_free_at : int;
  mutable transactions : int;
  mutable bus_wait : int;
}

let create timing ~cores =
  {
    timing;
    cores;
    tags = Array.init cores (fun _ -> Array.make timing.Timing.cache_lines (-1));
    states = Array.init cores (fun _ -> Array.make timing.Timing.cache_lines Invalid);
    bus_free_at = 0;
    transactions = 0;
    bus_wait = 0;
  }

let reset t =
  Array.iter (fun row -> Array.fill row 0 (Array.length row) (-1)) t.tags;
  Array.iter (fun row -> Array.fill row 0 (Array.length row) Invalid) t.states;
  t.bus_free_at <- 0;
  t.transactions <- 0;
  t.bus_wait <- 0

let line_of t loc = loc lsr t.timing.Timing.line_shift

let set_of t line = line mod t.timing.Timing.cache_lines

let holds t core line =
  let set = set_of t line in
  if t.tags.(core).(set) = line then t.states.(core).(set) else Invalid

let set_state t core line st =
  let set = set_of t line in
  t.tags.(core).(set) <- line;
  t.states.(core).(set) <- st

let invalidate_others t core line =
  for other = 0 to t.cores - 1 do
    if other <> core then begin
      let set = set_of t line in
      if t.tags.(other).(set) = line then t.states.(other).(set) <- Invalid
    end
  done

(* Acquire the bus at [now]: returns the grant time and accounts for
   the wait.  Transactions are serialised, which is what couples the
   cores' barrier activity; the request queue is bounded at one
   outstanding transaction per core, so a burst of queued store
   drains cannot starve later requests indefinitely. *)
let bus_grant t now =
  let cap = t.timing.Timing.bus_occupancy_cycles * t.cores in
  let backlog = min t.bus_free_at (now + cap) in
  let grant = max now backlog in
  t.bus_wait <- t.bus_wait + (grant - now);
  t.bus_free_at <- max t.bus_free_at (grant + t.timing.Timing.bus_occupancy_cycles);
  t.transactions <- t.transactions + 1;
  grant

(* Does any other core hold the line (and in which state)? *)
let remote_holder t core line =
  let found = ref None in
  for other = 0 to t.cores - 1 do
    if other <> core && !found = None then begin
      match holds t other line with
      | Invalid -> ()
      | st -> found := Some (other, st)
    end
  done;
  !found

type access_cost = { ready_at : int; hit : bool }

let load t ~core ~loc ~now =
  let tm = t.timing in
  let line = line_of t loc in
  match holds t core line with
  | Shared | Exclusive -> { ready_at = now + tm.Timing.l1_hit_cycles; hit = true }
  | Invalid ->
      let grant = bus_grant t now in
      let transfer =
        match remote_holder t core line with
        | Some (_, Exclusive) ->
            (* Dirty in another cache: cache-to-cache transfer,
               both end Shared. *)
            tm.Timing.remote_transfer_cycles
        | Some (_, Shared) -> tm.Timing.l2_hit_cycles
        | Some (_, Invalid) | None -> tm.Timing.memory_cycles
      in
      (match remote_holder t core line with
      | Some (other, Exclusive) -> set_state t other line Shared
      | _ -> ());
      set_state t core line Shared;
      { ready_at = grant + transfer; hit = false }

let store_drain t ~core ~loc ~now =
  let tm = t.timing in
  let line = line_of t loc in
  match holds t core line with
  | Exclusive -> now + tm.Timing.sb_drain_owned_cycles
  | Shared | Invalid ->
      (* Upgrade: bus transaction to invalidate other copies, plus a
         fetch when we do not hold the line at all. *)
      let grant = bus_grant t now in
      let base =
        match holds t core line with
        | Shared -> tm.Timing.sb_drain_shared_cycles
        | Invalid | Exclusive ->
            tm.Timing.sb_drain_shared_cycles
            + (match remote_holder t core line with
              | Some (_, Exclusive) -> tm.Timing.remote_transfer_cycles
              | _ -> tm.Timing.l2_hit_cycles)
      in
      invalidate_others t core line;
      set_state t core line Exclusive;
      grant + base

let bus_transactions t = t.transactions
let bus_wait_cycles t = t.bus_wait
