open Wmm_isa
(** The discrete-event multicore performance simulator.

    Each core executes its micro-op stream in order; stores retire
    into a store buffer that drains serially through the coherent
    memory system ({!Memsys}); full fences stall until the buffer is
    empty, which makes their cost depend on buffer occupancy and
    cache state - the mechanism behind the paper's micro/macro
    divergence.  Cores are advanced in global time order so bus
    contention is causally consistent. *)

type config = {
  timing : Timing.t;
  cores : int;
  seed : int;  (** Drives branch-mispredict draws; fixed seed = fixed result. *)
}

val config : ?seed:int -> ?cores:int -> Arch.t -> config
(** Default core count is the architecture's ({!Arch.core_count}). *)

type stats = {
  wall_cycles : int;  (** Completion time of the slowest core. *)
  per_core_cycles : int array;
  bus_transactions : int;
  bus_wait_cycles : int;
  fence_stall_cycles : int;  (** Cycles full fences spent waiting on drains. *)
  release_stall_cycles : int;
  forwarded_loads : int;
  l1_hits : int;
  l1_misses : int;
  uops_executed : int;
}

val run : config -> Uop.t array array -> stats
(** [run config streams] executes [streams.(i)] on core
    [i mod config.cores].  Raises [Invalid_argument] when more
    streams than cores are supplied. *)

val wall_ns : config -> stats -> float

val sequence_cost_ns : ?repetitions:int -> Timing.t -> Uop.t list -> float
(** Microbenchmark a short instruction sequence: execute it
    back-to-back in an otherwise empty single-core context and return
    the steady-state cost in nanoseconds per occurrence.  This is the
    in-vitro measurement the paper compares against in-vivo derived
    costs. *)
