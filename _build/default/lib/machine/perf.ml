open Wmm_isa
open Wmm_util

type config = { timing : Timing.t; cores : int; seed : int }

let config ?(seed = 1) ?cores arch =
  let cores = match cores with Some c -> c | None -> Arch.core_count arch in
  { timing = Timing.for_arch arch; cores; seed }

type stats = {
  wall_cycles : int;
  per_core_cycles : int array;
  bus_transactions : int;
  bus_wait_cycles : int;
  fence_stall_cycles : int;
  release_stall_cycles : int;
  forwarded_loads : int;
  l1_hits : int;
  l1_misses : int;
  uops_executed : int;
}

(* One store-buffer entry: destination and the time its drain
   completes.  Drains are serial per core, so the completion time can
   be fixed at enqueue. *)
type sb_entry = { loc : int; completes : int }

type core_state = {
  id : int;
  stream : Uop.t array;
  mutable index : int;
  mutable time : int;
  mutable prev_was_spin : bool;
  mutable loads_seen : int;
  mutable misses_seen : int;
  mutable sb : sb_entry list;  (** Oldest first. *)
  mutable sb_tail_completes : int;
  mutable last_release : int;
  rng : Rng.t;
}

let forwardable core loc = List.exists (fun e -> e.loc = loc) core.sb

let same_loc_drain_time core loc =
  List.fold_left (fun acc e -> if e.loc = loc then max acc e.completes else acc) 0 core.sb

(* Time at which occupancy drops to [threshold] or below. *)
let time_for_occupancy core now threshold =
  let pending = List.filter (fun e -> e.completes > now) core.sb in
  let excess = List.length pending - threshold in
  if excess <= 0 then now
  else begin
    let completions = List.map (fun e -> e.completes) pending in
    let sorted = List.sort compare completions in
    List.nth sorted (excess - 1)
  end

let run config streams =
  if Array.length streams > config.cores then
    invalid_arg "Perf.run: more streams than cores";
  let tm = config.timing in
  let memsys = Memsys.create tm ~cores:config.cores in
  let base_rng = Rng.create config.seed in
  let cores =
    Array.mapi
      (fun i stream ->
        {
          id = i;
          stream;
          index = 0;
          time = 0;
          prev_was_spin = false;
          loads_seen = 0;
          misses_seen = 0;
          sb = [];
          sb_tail_completes = 0;
          last_release = min_int / 2;
          rng = Rng.split base_rng;
        })
      streams
  in
  let fence_stall = ref 0 in
  let release_stall = ref 0 in
  let forwarded = ref 0 in
  let hits = ref 0 in
  let misses = ref 0 in
  let executed = ref 0 in
  let enqueue_store ?(extra_drain = 0) core loc =
    (* Drop entries whose drain has completed; the live list is then
       bounded by the buffer capacity. *)
    core.sb <- List.filter (fun e -> e.completes > core.time) core.sb;
    (* Respect buffer capacity: stall until a slot frees up. *)
    let now = core.time in
    let avail = time_for_occupancy core now (tm.Timing.sb_capacity - 1) in
    core.time <- max now avail;
    let start = max core.time core.sb_tail_completes in
    let completes = Memsys.store_drain memsys ~core:core.id ~loc ~now:start + extra_drain in
    core.sb_tail_completes <- completes;
    core.sb <- core.sb @ [ { loc; completes } ];
    core.time <- core.time + 1
  in
  let do_load core loc =
    if forwardable core loc then begin
      incr forwarded;
      core.time <- core.time + 1
    end
    else begin
      let cost = Memsys.load memsys ~core:core.id ~loc ~now:core.time in
      core.loads_seen <- core.loads_seen + 1;
      if cost.Memsys.hit then incr hits
      else begin
        incr misses;
        core.misses_seen <- core.misses_seen + 1
      end;
      core.time <- cost.Memsys.ready_at
    end
  in
  let spin_cost core ~light n =
    (* Back-to-back injected loops overlap in the pipeline; only a
       fraction of a spin's time is paid when it directly follows
       another one. *)
    let full = Timing.spin_injected_cycles tm ~light n in
    if core.prev_was_spin then
      int_of_float (Float.round (tm.Timing.spin_adjacent_fraction *. float_of_int full))
    else full
  in
  let counter_base = 1_000_000 in
  let line_stride = 1 lsl tm.Timing.line_shift in
  let step core =
    let uop = core.stream.(core.index) in
    core.index <- core.index + 1;
    incr executed;
    let was_spin = match uop with Uop.Spin _ | Uop.Spin_light _ -> true | _ -> false in
    (match uop with
    | Uop.Busy n -> core.time <- core.time + max 0 n
    | Uop.Nops n -> core.time <- core.time + Timing.nop_cycles tm n
    | Uop.Spin n -> core.time <- core.time + spin_cost core ~light:false n
    | Uop.Spin_light n -> core.time <- core.time + spin_cost core ~light:true n
    | Uop.Branch ->
        (* Prediction quality tracks code/data footprint: tight
           cache-resident loops (lmbench-style) predict almost
           perfectly; large-footprint macro workloads do not.  This
           is the source of the paper's micro/macro divergence for
           the ctrl fencing strategy. *)
        let miss_ratio =
          if core.loads_seen = 0 then 0.
          else float_of_int core.misses_seen /. float_of_int core.loads_seen
        in
        let rate =
          Float.min tm.Timing.branch_mispredict_rate (0.06 +. (1.2 *. miss_ratio))
        in
        let cost =
          if Rng.unit_float core.rng < rate then
            tm.Timing.branch_cycles + tm.Timing.branch_mispredict_cycles
          else tm.Timing.branch_cycles
        in
        core.time <- core.time + cost
    | Uop.Load loc -> do_load core loc
    | Uop.Load_acquire loc ->
        (* An acquire load may not return a buffered (not yet
           globally visible) value: wait for same-location drains. *)
        core.time <- max core.time (same_loc_drain_time core loc);
        do_load core loc;
        core.time <- core.time + tm.Timing.acquire_extra_cycles
    | Uop.Store loc -> enqueue_store core loc
    | Uop.Store_release loc ->
        let avail = time_for_occupancy core core.time tm.Timing.release_drain_threshold in
        release_stall := !release_stall + max 0 (avail - core.time);
        core.time <- max core.time avail;
        enqueue_store ~extra_drain:tm.Timing.release_drain_penalty_cycles core loc;
        core.time <- core.time + tm.Timing.release_extra_cycles;
        core.last_release <- core.time
    | Uop.Fence_full ->
        let drained = max core.time core.sb_tail_completes in
        fence_stall := !fence_stall + (drained - core.time);
        let interaction =
          if core.time - core.last_release < 30 then
            tm.Timing.release_fence_interaction_cycles
          else 0
        in
        core.time <- drained + tm.Timing.full_fence_cycles + interaction
    | Uop.Fence_store -> core.time <- core.time + tm.Timing.store_fence_cycles
    | Uop.Fence_load -> core.time <- core.time + tm.Timing.load_fence_cycles
    | Uop.Fence_lw ->
        (* lwsync orders without a full drain: it only waits for the
           buffer to shrink below a couple of entries. *)
        let avail = time_for_occupancy core core.time 2 in
        fence_stall := !fence_stall + max 0 (avail - core.time);
        core.time <- max core.time avail + tm.Timing.lwsync_cycles
    | Uop.Fence_pipeline -> core.time <- core.time + tm.Timing.pipeline_flush_cycles
    | Uop.Counter_shared path ->
        (* Invocation counter in a line shared by every core: a
           read-modify-write that bounces the line (the perturbation
           the paper warns about). *)
        let loc = counter_base + (path * line_stride) in
        do_load core loc;
        core.time <- core.time + 1;
        enqueue_store core loc
    | Uop.Counter_private path ->
        let loc =
          counter_base + (1024 * line_stride)
          + (((path * config.cores) + core.id) * line_stride)
        in
        do_load core loc;
        core.time <- core.time + 1;
        enqueue_store core loc);
    core.prev_was_spin <- was_spin
  in
  (* Advance cores in global time order so shared-resource usage is
     causally consistent. *)
  let active core = core.index < Array.length core.stream in
  let rec loop () =
    let next = ref None in
    Array.iter
      (fun core ->
        if active core then
          match !next with
          | Some best when best.time <= core.time -> ()
          | _ -> next := Some core)
      cores;
    match !next with
    | None -> ()
    | Some core ->
        step core;
        loop ()
  in
  loop ();
  let per_core_cycles = Array.map (fun c -> max c.time c.sb_tail_completes) cores in
  {
    wall_cycles = Array.fold_left max 0 per_core_cycles;
    per_core_cycles;
    bus_transactions = Memsys.bus_transactions memsys;
    bus_wait_cycles = Memsys.bus_wait_cycles memsys;
    fence_stall_cycles = !fence_stall;
    release_stall_cycles = !release_stall;
    forwarded_loads = !forwarded;
    l1_hits = !hits;
    l1_misses = !misses;
    uops_executed = !executed;
  }

let wall_ns config stats = Timing.ns_of_cycles config.timing stats.wall_cycles

let sequence_cost_ns ?(repetitions = 2000) timing sequence =
  let config = { timing; cores = 1; seed = 7 } in
  let spacer = [ Uop.Busy 4 ] in
  let body = Array.of_list (List.concat_map (fun u -> u :: spacer) sequence) in
  let repeated = Array.concat (List.init repetitions (fun _ -> body)) in
  let with_seq = run config [| repeated |] in
  let spacer_only =
    Array.concat
      (List.init repetitions (fun _ -> Array.of_list (List.concat_map (fun _ -> spacer) sequence)))
  in
  let base = run config [| spacer_only |] in
  Timing.ns_of_cycles timing (with_seq.wall_cycles - base.wall_cycles)
  /. float_of_int repetitions
