open Wmm_isa
(** Per-architecture timing parameters for the performance simulator.

    All latencies are in core cycles.  The values are calibrated so
    that the *microbenchmark* costs of the barrier instructions land
    near the paper's measurements (POWER7: [sync] 18.9 ns vs [lwsync]
    6.1 ns; ARMv8: [dmb ish] variants indistinguishable by
    microbenchmark, [isb] in the ~20 ns range), while the
    *macro* costs emerge from simulated store-buffer and coherence
    state.  See DESIGN.md section 5 for the calibration policy. *)

type t = {
  arch : Arch.t;
  (* Memory hierarchy. *)
  l1_hit_cycles : int;
  l2_hit_cycles : int;
  memory_cycles : int;  (** Miss to the shared level. *)
  remote_transfer_cycles : int;  (** Dirty line in another core's cache. *)
  bus_occupancy_cycles : int;  (** How long one coherence transaction holds the bus. *)
  cache_lines : int;  (** Direct-mapped L1 size in lines. *)
  line_shift : int;  (** log2 of locations per line. *)
  (* Store buffer. *)
  sb_capacity : int;
  sb_drain_owned_cycles : int;  (** Line already exclusive. *)
  sb_drain_shared_cycles : int;  (** Needs an invalidation round. *)
  (* Barriers. *)
  full_fence_cycles : int;  (** dmb ish / hwsync base cost, excluding drain wait. *)
  store_fence_cycles : int;  (** dmb ishst / eieio. *)
  load_fence_cycles : int;  (** dmb ishld. *)
  lwsync_cycles : int;  (** POWER lwsync base cost. *)
  pipeline_flush_cycles : int;  (** isb / isync. *)
  acquire_extra_cycles : int;  (** ldar over ldr. *)
  release_extra_cycles : int;  (** stlr over str. *)
  release_drain_threshold : int;
      (** A store-release stalls until the store buffer has at most
          this many entries - the source of its context-dependent
          cost. *)
  release_drain_penalty_cycles : int;
      (** Extra drain latency of a store-release entry: it commits
          with ordering obligations, which slows the buffer's drain
          engine in store-release-heavy phases. *)
  release_fence_interaction_cycles : int;
      (** Extra cost of a full fence issued shortly after a
          store-release (the paper observes "subtle interactions
          between load-acquire/store-release and dmb instructions"). *)
  (* Branches (used by the ctrl fencing strategy). *)
  branch_cycles : int;
  branch_mispredict_cycles : int;
  branch_mispredict_rate : float;  (** In macro context. *)
  (* Cost function (spin loop). *)
  spin_startup_cycles : int;  (** With the stack spill of Figs. 2-3. *)
  spin_startup_light_cycles : int;  (** Scratch-register variant. *)
  spin_per_iteration_cycles : int;
  spin_overlap_cycles : int;
      (** Cycles of a small injected loop hidden by surrounding
          pipeline slack; the source of Fig. 4's non-linearity. *)
  spin_adjacent_fraction : float;
      (** Fraction of a cost function's time actually paid when it
          immediately follows another injected cost function: back-to-
          back injected loops overlap heavily in the pipeline, which
          is why the paper's per-elemental sensitivities (Fig. 6) sum
          to more than the all-barriers sensitivity (Fig. 5). *)
  (* Nop padding. *)
  nops_per_cycle : int;
  nop_disruption_cycles : int;
      (** Fixed pipeline/alignment disturbance of an injected nop
          sequence, beyond the nops' own issue slots - the reason the
          paper measures a ~2% mean cost for nop insertion on ARM. *)
}

val armv8 : t
val power7 : t
val for_arch : Arch.t -> t

val spin_cycles : t -> light:bool -> int -> int
(** Standalone execution time of the cost-function loop with the
    given iteration count, as a timing-loop microbenchmark would
    measure it (pipeline floor applied, no overlap discount). *)

val spin_injected_cycles : t -> light:bool -> int -> int
(** Effective cycles added when the loop is injected inline into
    surrounding code: small loops partially overlap with neighbouring
    work. *)

val nop_cycles : t -> int -> int
(** Cost of [n] injected nop instructions. *)

val ns_of_cycles : t -> int -> float
val cycles_of_ns : t -> float -> int
