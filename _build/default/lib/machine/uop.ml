type t =
  | Busy of int
  | Load of int
  | Store of int
  | Load_acquire of int
  | Store_release of int
  | Fence_full
  | Fence_store
  | Fence_load
  | Fence_lw
  | Fence_pipeline
  | Branch
  | Spin of int
  | Spin_light of int
  | Nops of int
  | Counter_shared of int
  | Counter_private of int

let pp fmt = function
  | Busy n -> Format.fprintf fmt "busy(%d)" n
  | Load l -> Format.fprintf fmt "ld[%d]" l
  | Store l -> Format.fprintf fmt "st[%d]" l
  | Load_acquire l -> Format.fprintf fmt "ldar[%d]" l
  | Store_release l -> Format.fprintf fmt "stlr[%d]" l
  | Fence_full -> Format.pp_print_string fmt "fence.full"
  | Fence_store -> Format.pp_print_string fmt "fence.st"
  | Fence_load -> Format.pp_print_string fmt "fence.ld"
  | Fence_lw -> Format.pp_print_string fmt "fence.lw"
  | Fence_pipeline -> Format.pp_print_string fmt "fence.pipe"
  | Branch -> Format.pp_print_string fmt "branch"
  | Spin n -> Format.fprintf fmt "spin(%d)" n
  | Spin_light n -> Format.fprintf fmt "spin-light(%d)" n
  | Nops n -> Format.fprintf fmt "nops(%d)" n
  | Counter_shared p -> Format.fprintf fmt "ctr.shared(%d)" p
  | Counter_private p -> Format.fprintf fmt "ctr.private(%d)" p

let is_fence = function
  | Fence_full | Fence_store | Fence_load | Fence_lw | Fence_pipeline -> true
  | _ -> false

let is_memory = function
  | Load _ | Store _ | Load_acquire _ | Store_release _ | Counter_shared _
  | Counter_private _ ->
      true
  | _ -> false
