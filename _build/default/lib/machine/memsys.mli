(** Shared memory system: per-core direct-mapped L1 caches kept
    coherent by an invalidation protocol over a single shared bus.

    The model is deliberately simple but stateful: the cost of a load
    or of draining a store depends on where the line currently lives
    (own cache exclusive / shared / another core's cache / memory)
    and on bus contention, which is what makes barrier costs
    context-dependent in macro workloads. *)

type t

val create : Timing.t -> cores:int -> t

val reset : t -> unit

type access_cost = {
  ready_at : int;  (** Completion time of the access. *)
  hit : bool;  (** Whether it was a local L1 hit. *)
}

val load : t -> core:int -> loc:int -> now:int -> access_cost
(** Perform a load: updates cache state and returns when the value is
    available. *)

val store_drain : t -> core:int -> loc:int -> now:int -> int
(** Drain one store-buffer entry to the coherent memory system:
    obtains the line exclusively (invalidating sharers) and returns
    the completion time. *)

val bus_transactions : t -> int
(** Total coherence transactions so far (for reports). *)

val bus_wait_cycles : t -> int
(** Total cycles spent waiting for the bus (contention measure). *)
