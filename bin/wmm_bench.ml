(* Command-line interface to the benchmark suite.

   Subcommands:
     list        - enumerate benchmarks, litmus tests and experiments
     litmus      - run litmus tests (operational vs axiomatic)
     asm         - show a litmus test or cost function as assembly
     micro       - microbenchmark fence instruction sequences
     sensitivity - fit a benchmark's sensitivity to a code path
     figure      - regenerate one of the paper's figures/tables
     analyze     - infer, verify and cost-rank fence placements
     conform     - differential conformance over a synthesized battery
     serve       - long-running exploration daemon on a Unix socket
     query       - query a running daemon (single request or --stdin bulk)
     cache       - inspect, trim or fsck the result cache and journals
     chaos       - seeded fault-injection run against a live daemon *)

open Cmdliner

(* CLI usage errors: report what was wrong and what would have been
   valid, then exit non-zero - never a bare exception trace. *)
let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("wmm_bench: " ^ msg);
      exit 2)
    fmt

(* Snapshot the candidate-search counters into the run's telemetry so
   the JSON dump records how much exploration the run performed. *)
let record_exploration engine =
  let s = Wmm_model.Enumerate.global_stats () in
  Wmm_engine.Engine.set_exploration engine
    {
      Wmm_engine.Telemetry.explored = s.Wmm_model.Enumerate.generated;
      pruned = s.Wmm_model.Enumerate.pruned;
      well_formed = s.Wmm_model.Enumerate.well_formed;
      consistent = s.Wmm_model.Enumerate.consistent;
      graph_executions = s.Wmm_model.Enumerate.graph_executions;
      revisits = s.Wmm_model.Enumerate.revisits;
      symmetry_skips = s.Wmm_model.Enumerate.symmetry_skips;
      cutover_small = s.Wmm_model.Enumerate.cutover_small;
      explore_wall_s = s.Wmm_model.Enumerate.wall_s;
    }

let experiment_ids =
  [
    "fig1"; "fig2_3"; "fig4"; "fig5"; "fig6"; "jvm_tables"; "rankings"; "rbd";
    "counters"; "optimizer";
  ]

let arch_conv =
  let parse s =
    match Wmm_isa.Arch.of_string s with
    | Some a -> Ok a
    | None -> Error (`Msg (Printf.sprintf "unknown architecture %S (arm | power)" s))
  in
  Arg.conv (parse, Wmm_isa.Arch.pp)

let arch_arg =
  Arg.(value & opt arch_conv Wmm_isa.Arch.Armv8 & info [ "arch" ] ~doc:"arm or power")

let engine_conv =
  let parse s =
    match Wmm_model.Enumerate.engine_of_string s with
    | Some e -> Ok e
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown engine %S (%s)" s
                (String.concat " | "
                   (List.map Wmm_model.Enumerate.engine_name
                      Wmm_model.Enumerate.all_engines))))
  in
  let print fmt e = Format.pp_print_string fmt (Wmm_model.Enumerate.engine_name e) in
  Arg.conv (parse, print)

(* Every exploration-backed subcommand takes --engine; applying it
   sets the ambient default before any worker domain spawns, so the
   whole pipeline (Check, Conform, Infer, Contain, served ops)
   inherits the choice. *)
let engine_arg =
  Arg.(
    value
    & opt engine_conv Wmm_model.Enumerate.Auto
    & info [ "engine" ]
        ~doc:
          "Exploration engine: graph (incremental execution graphs), pruned \
           (backtracking search), reference (generate-and-filter oracle) or auto \
           (cutover: pruned for tiny tests, graph otherwise)")

let apply_engine e = Wmm_model.Enumerate.set_default_engine e

(* ------------------------------------------------------------------ *)
(* Certificate emission helpers (litmus --certify / analyze --certify) *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let cert_file_name name model =
  let safe s =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
        | _ -> '-')
      s
  in
  Printf.sprintf "%s__%s.cert" (safe name) (safe model)

let write_cert dir name model cert =
  mkdir_p dir;
  let path = Filename.concat dir (cert_file_name name model) in
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Wmm_cert.Certificate.to_string cert));
  path

(* ------------------------------------------------------------------ *)
(* list                                                                *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    print_endline "JVM benchmarks (DaCapo subset + spark):";
    List.iter
      (fun (p : Wmm_workload.Profile.t) -> Printf.printf "  %s\n" p.Wmm_workload.Profile.name)
      Wmm_workload.Dacapo.all;
    print_endline "Kernel benchmarks:";
    List.iter
      (fun (p : Wmm_workload.Profile.t) -> Printf.printf "  %s\n" p.Wmm_workload.Profile.name)
      Wmm_workload.Kernelbench.all;
    print_endline "Litmus tests:";
    List.iter
      (fun (t : Wmm_litmus.Test.t) ->
        Printf.printf "  %-24s %s\n" t.Wmm_litmus.Test.name t.Wmm_litmus.Test.description)
      Wmm_litmus.Library.all;
    print_endline "Memory models:";
    List.iter (Printf.printf "  %s\n") (Wmm_registry.Registry.model_table ());
    print_endline "Lock workloads (see `lang`):";
    List.iter
      (fun (l : Wmm_lang.Locks.t) ->
        Printf.printf "  %-24s %s\n" l.Wmm_lang.Locks.name l.Wmm_lang.Locks.description)
      Wmm_lang.Locks.all;
    print_endline "Experiments (see `figure`):";
    List.iter (Printf.printf "  %s\n") experiment_ids
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks, litmus tests, models and experiments")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* litmus                                                              *)
(* ------------------------------------------------------------------ *)

let litmus_cmd =
  let open Wmm_litmus in
  let open Wmm_model in
  let test_arg =
    Arg.(value & opt (some string) None & info [ "test" ] ~doc:"Run a single named test")
  in
  let file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "file" ] ~doc:"Run a test from a litmus-format file")
  in
  let exhaustive_arg =
    Arg.(value & flag & info [ "exhaustive" ] ~doc:"Exhaustive state-space exploration")
  in
  let iterations_arg =
    Arg.(value & opt int 2000 & info [ "iterations" ] ~doc:"Random-run count")
  in
  let certify_arg =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "Emit a proof-carrying certificate for every axiomatic verdict (witness \
             execution for allowed, exhaustive execution set for forbidden), \
             checkable offline with `wmm_bench check`")
  in
  let cert_dir_arg =
    Arg.(
      value & opt string "_wmm_certs"
      & info [ "cert-dir" ] ~docv:"DIR" ~doc:"Directory certificates are written to")
  in
  let run engine test_name file exhaustive iterations certify cert_dir =
    apply_engine engine;
    let tests =
      match (test_name, file) with
      | _, Some path -> (
          match Parse.parse_file path with
          | Ok p -> [ p.Parse.test ]
          | Error e -> failwith (Printf.sprintf "%s: %s" path e))
      | None, None -> Library.all
      | Some name, None -> (
          match Library.by_name name with
          | Some t -> [ t ]
          | None -> failwith (Printf.sprintf "unknown litmus test %S" name))
    in
    let failures = ref 0 in
    List.iter
      (fun test ->
        List.iter
          (fun model ->
            let selected =
              if file <> None then
                (* File tests carry no annotations: check them under
                   every model (or the hinted architecture's). *)
                Test.expected_under test model <> None
                || model = Axiomatic.Arm || model = Axiomatic.Power
              else Test.expected_under test model <> None
            in
            match selected with
            | false -> ()
            | true ->
                let config =
                  match model with
                  | Axiomatic.Sc -> Wmm_machine.Relaxed.sc_config
                  | Axiomatic.Tso -> Wmm_machine.Relaxed.tso_config
                  | Axiomatic.Arm | Axiomatic.Power -> Wmm_machine.Relaxed.relaxed_config
                  | Axiomatic.Rc11 -> Wmm_machine.Relaxed.sc_config
                in
                let v =
                  if exhaustive then Check.run_exhaustive model config test
                  else Check.run_random ~iterations model config test
                in
                (* File-loaded tests have a placeholder annotation:
                   only forbidden-observed counts as unsound there. *)
                let unsound =
                  if file <> None then v.Check.observed && not v.Check.axiomatic_allowed
                  else not (Check.sound v)
                in
                if unsound then incr failures;
                print_endline (Check.describe v);
                if certify then begin
                  match Wmm_certify.Emit.litmus model test with
                  | Ok cert ->
                      let path =
                        write_cert cert_dir test.Test.name (Axiomatic.model_name model)
                          cert
                      in
                      Printf.printf "  certificate: %s\n" path
                  | Error msg -> Printf.printf "  certificate: skipped (%s)\n" msg
                end)
          Axiomatic.all_models)
      tests;
    if !failures > 0 then begin
      Printf.printf "%d unsound verdicts\n" !failures;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "litmus" ~doc:"Run litmus tests on the operational machine and the models")
    Term.(
      const run $ engine_arg $ test_arg $ file_arg $ exhaustive_arg $ iterations_arg
      $ certify_arg $ cert_dir_arg)

(* ------------------------------------------------------------------ *)
(* litmus-table                                                        *)
(* ------------------------------------------------------------------ *)

let litmus_table_cmd =
  let open Wmm_litmus in
  let open Wmm_model in
  let run () =
    let table =
      Wmm_util.Table.create
        [ "test"; "SC"; "TSO"; "ARMv8"; "POWER"; "description" ]
        ~aligns:
          Wmm_util.Table.[ Left; Right; Right; Right; Right; Left ]
    in
    List.iter
      (fun (t : Test.t) ->
        let cell model =
          match Test.expected_under t model with
          | None -> "-"
          | Some _ -> if Check.axiomatic_allowed model t then "allow" else "forbid"
        in
        Wmm_util.Table.add_row table
          [
            t.Test.name;
            cell Axiomatic.Sc;
            cell Axiomatic.Tso;
            cell Axiomatic.Arm;
            cell Axiomatic.Power;
            t.Test.description;
          ])
      Library.all;
    Wmm_util.Table.print table
  in
  Cmd.v
    (Cmd.info "litmus-table"
       ~doc:"Print the full litmus verdict matrix (axiomatic models)")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* asm                                                                 *)
(* ------------------------------------------------------------------ *)

let asm_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Litmus test name, or 'costfn'")
  in
  let run arch name =
    if name = "costfn" then begin
      let cf = Wmm_costfn.Cost_function.make arch 1024 in
      List.iter print_endline (Wmm_costfn.Cost_function.assembly cf)
    end
    else begin
      match Wmm_litmus.Library.by_name name with
      | Some t -> print_string (Wmm_isa.Asm.program arch t.Wmm_litmus.Test.program)
      | None -> failwith (Printf.sprintf "unknown litmus test %S" name)
    end
  in
  Cmd.v (Cmd.info "asm" ~doc:"Print a litmus test or the cost function as assembly")
    Term.(const run $ arch_arg $ name_arg)

(* ------------------------------------------------------------------ *)
(* micro                                                               *)
(* ------------------------------------------------------------------ *)

let micro_cmd =
  let run arch =
    let open Wmm_machine in
    let timing = Timing.for_arch arch in
    let sequences =
      match arch with
      | Wmm_isa.Arch.Armv8 ->
          [
            ("dmb ish", [ Uop.Fence_full ]);
            ("dmb ishld", [ Uop.Fence_load ]);
            ("dmb ishst", [ Uop.Fence_store ]);
            ("isb", [ Uop.Fence_pipeline ]);
            ("ldar", [ Uop.Load_acquire 0 ]);
            ("stlr", [ Uop.Store_release 0 ]);
          ]
      | Wmm_isa.Arch.Power7 ->
          [
            ("sync", [ Uop.Fence_full ]);
            ("lwsync", [ Uop.Fence_lw ]);
            ("eieio", [ Uop.Fence_store ]);
            ("isync", [ Uop.Fence_pipeline ]);
          ]
    in
    List.iter
      (fun (name, sequence) ->
        Printf.printf "%-10s %6.1f ns\n" name (Perf.sequence_cost_ns timing sequence))
      sequences
  in
  Cmd.v
    (Cmd.info "micro" ~doc:"Microbenchmark fence sequences on the simulated machine")
    Term.(const run $ arch_arg)

(* ------------------------------------------------------------------ *)
(* sensitivity                                                         *)
(* ------------------------------------------------------------------ *)

let sensitivity_cmd =
  let bench_arg =
    Arg.(
      value & opt string "spark" & info [ "bench" ] ~doc:"Benchmark name (JVM or kernel)")
  in
  let path_arg =
    Arg.(
      value & opt string "all"
      & info [ "path" ]
          ~doc:
            "Code path: 'all', an elemental barrier (StoreStore, ...), or a kernel macro \
             (smp_mb, read_barrier_depends, ...)")
  in
  let samples_arg = Arg.(value & opt int 6 & info [ "samples" ] ~doc:"Samples per point") in
  let run arch bench path samples =
    let open Wmm_experiments in
    let open Wmm_core in
    let light = Exp_common.light_for arch in
    let jvm_profile = Wmm_workload.Dacapo.by_name bench in
    let kernel_profile = Wmm_workload.Kernelbench.by_name bench in
    let sweep =
      match (jvm_profile, Wmm_platform.Kernel.macro_of_name path) with
      | Some profile, None ->
          let elementals =
            if path = "all" then Wmm_platform.Barrier.all_elementals
            else
              [
                (match
                   List.find_opt
                     (fun e -> Wmm_platform.Barrier.elemental_name e = path)
                     Wmm_platform.Barrier.all_elementals
                 with
                | Some e -> e
                | None -> failwith (Printf.sprintf "unknown code path %S" path));
              ]
          in
          let inject uops = List.map (fun e -> (e, uops)) elementals in
          Experiment.sweep ~samples ~light ~code_path:path
            ~base:
              (Exp_common.jvm_platform
                 ~inject:(inject [ Exp_common.nop_uop arch ~light ])
                 arch)
            ~inject:(fun cf ->
              Exp_common.jvm_platform
                ~inject:(inject [ Wmm_costfn.Cost_function.uop cf ])
                arch)
            profile
      | None, Some macro -> (
          match kernel_profile with
          | Some profile ->
              Experiment.sweep ~samples ~code_path:path
                ~base:
                  (Exp_common.kernel_platform
                     ~inject:[ (macro, [ Exp_common.nop_uop arch ~light:false ]) ]
                     arch)
                ~inject:(fun cf ->
                  Exp_common.kernel_platform
                    ~inject:[ (macro, [ Wmm_costfn.Cost_function.uop cf ]) ]
                    arch)
                profile
          | None -> failwith (Printf.sprintf "unknown kernel benchmark %S" bench))
      | Some _, Some _ | None, None ->
          failwith
            (Printf.sprintf "cannot resolve benchmark %S with code path %S" bench path)
    in
    Printf.printf "%s / %s / %s:\n" bench (Wmm_isa.Arch.name arch) path;
    List.iter
      (fun (pt : Experiment.sweep_point) ->
        Printf.printf "  a=%7.1f ns  p=%.4f\n" pt.Experiment.cost_ns
          pt.Experiment.relative.Wmm_util.Stats.gmean)
      sweep.Experiment.points;
    Printf.printf "fit: %s%s\n"
      (Exp_common.fmt_fit sweep.Experiment.fit)
      (if Sensitivity.well_suited sweep.Experiment.fit then "" else "  (unstable)")
  in
  Cmd.v
    (Cmd.info "sensitivity" ~doc:"Fit a benchmark's sensitivity to a code path (eq. 1)")
    Term.(const run $ arch_arg $ bench_arg $ path_arg $ samples_arg)

(* ------------------------------------------------------------------ *)
(* figure                                                              *)
(* ------------------------------------------------------------------ *)

let figure_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for the execution engine (0 = auto-detect via \
             Domain.recommended_domain_count; 1 = sequential)")
  in
  let no_cache_arg =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the result cache")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt string Wmm_engine.Cache.default_dir
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Result cache directory")
  in
  let telemetry_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE" ~doc:"Dump run telemetry as JSON to $(docv)")
  in
  let faults_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject-faults" ] ~docv:"SPEC"
          ~doc:
            "Deterministic fault injection, e.g. \
             $(b,seed=7,transient=0.3x2,outlier=0.05x10,corrupt=0.1)")
  in
  let retries_arg =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retries (with capped exponential backoff) for transient task failures")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"RUN-ID"
          ~doc:
            "Journal run id to resume: replays completed tasks from \
             $(b,_wmm_cache/journal/RUN-ID.jsonl) and computes only the remainder. \
             Without this flag a run id is derived from the request, so rerunning an \
             interrupted identical invocation resumes automatically.")
  in
  let robust_arg =
    Arg.(
      value & flag
      & info [ "robust-fit" ]
          ~doc:
            "Robust estimation: MAD outlier rejection on raw samples and \
             Huber-weighted sensitivity fits")
  in
  let run id jobs no_cache cache_dir telemetry_out faults_spec retries resume robust =
    let open Wmm_experiments in
    let faults =
      match faults_spec with
      | None -> Wmm_engine.Fault.none
      | Some spec -> (
          match Wmm_engine.Fault.parse spec with
          | Ok f -> f
          | Error msg -> failwith ("--inject-faults: " ^ msg))
    in
    (* Installed before any sample request is built: the experiment
       layer captures the ambient plan into each task's closure and
       cache key. *)
    Wmm_engine.Fault.set_ambient faults;
    let report =
      match id with
      | "fig1" -> fun _engine -> Fig1.report ()
      | "fig2_3" | "fig2" | "fig3" -> fun _engine -> Fig2_3.report ()
      | "fig4" -> fun _engine -> Fig4.report ()
      | "fig5" -> fun engine -> Fig5.report ~engine ~robust ()
      | "fig6" -> fun engine -> Fig6.report ~engine ~robust ()
      | "jvm_tables" | "t1" | "t2" | "t3" | "t4" -> fun _engine -> Jvm_tables.report ()
      | "rankings" | "fig7" | "fig8" | "t5" ->
          fun engine -> Rankings.report ~engine ~robust ()
      | "rbd" | "fig9" | "fig10" | "t6" -> fun engine -> Rbd.report ~engine ~robust ()
      | "counters" -> fun _engine -> Counters.report ()
      | "optimizer" -> fun _engine -> Optimizer_exp.report ()
      | other ->
          die "unknown experiment %S; valid ids: %s" other (String.concat " " experiment_ids)
    in
    let cache =
      if no_cache then Wmm_engine.Cache.disabled
      else Wmm_engine.Cache.create ~dir:cache_dir ()
    in
    let journal =
      (* Automatic resume: identical requests derive identical run
         ids.  --no-cache opts out of reuse entirely, unless an
         explicit --resume asks for the journal anyway (journal
         entries are self-contained, so resume works cacheless). *)
      let run_id =
        match resume with
        | Some id -> Some id
        | None when no_cache -> None
        | None ->
            Some
              (Wmm_engine.Journal.derived_run_id ~tag:("figure-" ^ id)
                 [
                   id;
                   Wmm_engine.Cache.code_version ();
                   (if Sys.getenv_opt "WMM_FAST" <> None then "fast" else "full");
                   Wmm_engine.Fault.fingerprint faults;
                   string_of_bool robust;
                 ])
      in
      Option.map
        (fun run_id ->
          let dir = Filename.concat cache_dir "journal" in
          let j = Wmm_engine.Journal.open_ ~dir ~run_id () in
          Printf.eprintf "journal: run id %s (%d completed tasks on file)\n%!" run_id
            (Wmm_engine.Journal.loaded j);
          j)
        run_id
    in
    let engine = Wmm_engine.Engine.create ~jobs ~cache ~retries ~faults ?journal () in
    print_endline (report engine);
    record_exploration engine;
    (* The run summary goes to stderr so figure output on stdout
       stays byte-identical across --jobs settings. *)
    prerr_endline (Wmm_engine.Engine.render_summary engine);
    Option.iter
      (fun path ->
        try Wmm_engine.Engine.write_telemetry engine path
        with Sys_error msg ->
          Printf.eprintf "warning: cannot write telemetry: %s\n" msg)
      telemetry_out
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Regenerate one of the paper's figures or tables")
    Term.(
      const run $ id_arg $ jobs_arg $ no_cache_arg $ cache_dir_arg $ telemetry_arg
      $ faults_arg $ retries_arg $ resume_arg $ robust_arg)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

let analyze_cmd =
  let tests_arg =
    Arg.(
      value & opt_all string []
      & info [ "test" ] ~docv:"NAME"
          ~doc:"Analyze the named litmus test (repeatable); default is the whole library")
  in
  let all_arg =
    Arg.(value & flag & info [ "all" ] ~doc:"Analyze every test in the litmus library")
  in
  let arch_arg =
    Arg.(
      value & opt string "both"
      & info [ "arch" ] ~docv:"ARCH" ~doc:"arm, power, or both (the default)")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for the execution engine (0 = auto-detect via \
             Domain.recommended_domain_count; 1 = sequential)")
  in
  let no_cache_arg =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the result cache")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt string Wmm_engine.Cache.default_dir
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Result cache directory")
  in
  let telemetry_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE" ~doc:"Dump run telemetry as JSON to $(docv)")
  in
  let retries_arg =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retries (with capped exponential backoff) for transient task failures")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"RUN-ID"
          ~doc:
            "Journal run id to resume; without this flag a run id is derived from the \
             request, so rerunning an interrupted identical invocation resumes \
             automatically.")
  in
  let no_cost_arg =
    Arg.(
      value & flag
      & info [ "no-cost" ] ~doc:"Skip the simulator cost-ranking phase (faster)")
  in
  let detail_arg =
    Arg.(
      value & flag
      & info [ "detail" ]
          ~doc:"Per-test breakdown: cost-ranked alternatives and minimality witnesses")
  in
  let certify_arg =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "Emit a minimality certificate for every inferred placement: the fenced \
             program's exhaustive forbidden execution set plus a witness execution \
             per dropped fence, checkable offline with `wmm_bench check`")
  in
  let cert_dir_arg =
    Arg.(
      value & opt string "_wmm_certs"
      & info [ "cert-dir" ] ~docv:"DIR" ~doc:"Directory certificates are written to")
  in
  let run engine names all arch_s jobs no_cache cache_dir telemetry_out retries resume
      no_cost detail certify cert_dir =
    apply_engine engine;
    let archs =
      match arch_s with
      | "both" -> [ Wmm_isa.Arch.Armv8; Wmm_isa.Arch.Power7 ]
      | s -> (
          match Wmm_isa.Arch.of_string s with
          | Some a -> [ a ]
          | None -> die "unknown architecture %S; %s (or both)" s Wmm_registry.Registry.valid_arches_sentence)
    in
    let tests =
      if all || names = [] then Wmm_litmus.Library.all
      else
        List.map
          (fun n ->
            match Wmm_litmus.Library.by_name n with
            | Some t -> t
            | None -> die "unknown litmus test %S (see `wmm_bench list`)" n)
          names
    in
    let cache =
      if no_cache then Wmm_engine.Cache.disabled
      else Wmm_engine.Cache.create ~dir:cache_dir ()
    in
    let journal =
      let run_id =
        match resume with
        | Some id -> Some id
        | None when no_cache -> None
        | None ->
            Some
              (Wmm_engine.Journal.derived_run_id ~tag:"analyze"
                 ([
                    Wmm_engine.Cache.code_version ();
                    (if Sys.getenv_opt "WMM_FAST" <> None then "fast" else "full");
                    arch_s;
                    string_of_bool no_cost;
                  ]
                 @ List.sort compare (List.map (fun (t : Wmm_litmus.Test.t) -> t.Wmm_litmus.Test.name) tests)))
      in
      Option.map
        (fun run_id ->
          let dir = Filename.concat cache_dir "journal" in
          let j = Wmm_engine.Journal.open_ ~dir ~run_id () in
          Printf.eprintf "journal: run id %s (%d completed tasks on file)\n%!" run_id
            (Wmm_engine.Journal.loaded j);
          j)
        run_id
    in
    let engine = Wmm_engine.Engine.create ~jobs ~cache ~retries ?journal () in
    List.iter
      (fun arch ->
        let rows =
          Wmm_analysis.Infer.analyze_all ~with_cost:(not no_cost) ~engine ~arch tests
        in
        print_string (Wmm_analysis.Infer.render ~detail arch rows);
        print_newline ();
        if certify then
          List.iter
            (fun (row : Wmm_analysis.Infer.row) ->
              match row.Wmm_analysis.Infer.status with
              | Wmm_analysis.Infer.Inferred inf -> (
                  match
                    Wmm_certify.Emit.minimal row.Wmm_analysis.Infer.model
                      row.Wmm_analysis.Infer.test inf.Wmm_analysis.Infer.minimal
                  with
                  | Ok cert ->
                      let path =
                        write_cert cert_dir
                          (row.Wmm_analysis.Infer.test.Wmm_litmus.Test.name
                         ^ "__minimal")
                          (Wmm_model.Axiomatic.model_name row.Wmm_analysis.Infer.model)
                          cert
                      in
                      Printf.printf "certificate: %s\n" path
                  | Error msg ->
                      Printf.printf "certificate: %s skipped (%s)\n"
                        row.Wmm_analysis.Infer.test.Wmm_litmus.Test.name msg)
              | _ -> ())
            rows)
      archs;
    record_exploration engine;
    prerr_endline (Wmm_engine.Engine.render_summary engine);
    Option.iter
      (fun path ->
        try Wmm_engine.Engine.write_telemetry engine path
        with Sys_error msg -> Printf.eprintf "warning: cannot write telemetry: %s\n" msg)
      telemetry_out
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Infer fence placements for litmus tests: critical cycles, verified-minimal \
          insertion, cost-ranked alternatives")
    Term.(
      const run $ engine_arg $ tests_arg $ all_arg $ arch_arg $ jobs_arg $ no_cache_arg
      $ cache_dir_arg $ telemetry_arg $ retries_arg $ resume_arg $ no_cost_arg
      $ detail_arg $ certify_arg $ cert_dir_arg)

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

(* Certificate validation.  Deliberately uses nothing but the
   [wmm_cert] library: no exploration engine, no operational machine,
   no shared code with the axiomatic core - a rejected certificate
   here means the producing pipeline (or the file) is wrong. *)
let check_cmd =
  let paths_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:"Certificate file, or directory containing .cert files (repeatable)")
  in
  let run paths =
    let files =
      List.concat_map
        (fun p ->
          if not (Sys.file_exists p) then die "no such file or directory: %s" p;
          if Sys.is_directory p then
            Sys.readdir p |> Array.to_list
            |> List.filter (fun f -> Filename.check_suffix f ".cert")
            |> List.sort compare
            |> List.map (Filename.concat p)
          else [ p ])
        paths
    in
    if files = [] then die "no certificates found under %s" (String.concat " " paths);
    let rejected = ref 0 in
    List.iter
      (fun path ->
        let content = In_channel.with_open_text path In_channel.input_all in
        match Wmm_cert.Checker.check_string content with
        | Ok cert ->
            Printf.printf "%-56s ok (%s, %s)\n" path
              (Wmm_cert.Certificate.claim_name cert.Wmm_cert.Certificate.claim)
              (Wmm_cert.Axioms.model_name cert.Wmm_cert.Certificate.model)
        | Error r ->
            incr rejected;
            Printf.printf "%-56s REJECTED %s\n" path (Wmm_cert.Checker.reason_string r))
      files;
    Printf.printf "%d certificate(s) checked, %d rejected\n" (List.length files)
      !rejected;
    if !rejected > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Validate verdict certificates with the independent checker (no exploration; \
          trusts only the certificate file and the checker's own replay and axioms)")
    Term.(const run $ paths_arg)

(* ------------------------------------------------------------------ *)
(* conform                                                             *)
(* ------------------------------------------------------------------ *)

let conform_cmd =
  let arch_arg =
    Arg.(
      value & opt string "both"
      & info [ "arch" ] ~docv:"ARCH" ~doc:"arm, power, or both (the default)")
  in
  let max_edges_arg =
    Arg.(
      value & opt int 4
      & info [ "max-edges" ] ~docv:"N"
          ~doc:"Relaxation-cycle size bound for the synthesized battery")
  in
  let limit_arg =
    Arg.(
      value & opt int 0
      & info [ "limit" ] ~docv:"N"
          ~doc:"Cap the battery at the first $(docv) tests (0 = the whole family)")
  in
  let infer_limit_arg =
    Arg.(
      value & opt int 48
      & info [ "infer-limit" ] ~docv:"N"
          ~doc:"Tests run through the fence-inference layer (0 disables it)")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for the execution engine (0 = auto-detect via \
             Domain.recommended_domain_count; 1 = sequential)")
  in
  let no_cache_arg =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the result cache")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt string Wmm_engine.Cache.default_dir
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Result cache directory")
  in
  let telemetry_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE" ~doc:"Dump run telemetry as JSON to $(docv)")
  in
  let retries_arg =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retries (with capped exponential backoff) for transient task failures")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"RUN-ID"
          ~doc:
            "Journal run id to resume; without this flag a run id is derived from the \
             request, so rerunning an interrupted identical invocation resumes \
             automatically.")
  in
  let run explorer arch_s max_edges limit infer_limit jobs no_cache cache_dir
      telemetry_out retries resume =
    apply_engine explorer;
    let archs =
      match arch_s with
      | "both" -> [ Wmm_isa.Arch.Armv8; Wmm_isa.Arch.Power7 ]
      | s -> (
          match Wmm_isa.Arch.of_string s with
          | Some a -> [ a ]
          | None -> die "unknown architecture %S; %s (or both)" s Wmm_registry.Registry.valid_arches_sentence)
    in
    if max_edges < 2 then die "--max-edges must be at least 2";
    let cache =
      if no_cache then Wmm_engine.Cache.disabled
      else Wmm_engine.Cache.create ~dir:cache_dir ()
    in
    let journal =
      let run_id =
        match resume with
        | Some id -> Some id
        | None when no_cache -> None
        | None ->
            Some
              (Wmm_engine.Journal.derived_run_id ~tag:"conform"
                 [
                   Wmm_engine.Cache.code_version ();
                   arch_s;
                   string_of_int max_edges;
                   string_of_int limit;
                   string_of_int infer_limit;
                   Wmm_model.Enumerate.engine_name explorer;
                 ])
      in
      Option.map
        (fun run_id ->
          let dir = Filename.concat cache_dir "journal" in
          let j = Wmm_engine.Journal.open_ ~dir ~run_id () in
          Printf.eprintf "journal: run id %s (%d completed tasks on file)\n%!" run_id
            (Wmm_engine.Journal.loaded j);
          j)
        run_id
    in
    let engine = Wmm_engine.Engine.create ~jobs ~cache ~retries ?journal () in
    let disagreements = ref 0 in
    List.iter
      (fun arch ->
        let family = Wmm_synth.Synth.generate ~max_edges arch in
        let tests =
          List.filteri
            (fun i _ -> limit = 0 || i < limit)
            (List.map (fun g -> g.Wmm_synth.Synth.g_test) family)
        in
        let report =
          Wmm_synth.Conform.run
            ~config:{ Wmm_synth.Conform.default_config with infer_limit; explorer }
            ~engine ~arch tests
        in
        disagreements :=
          !disagreements + List.length report.Wmm_synth.Conform.disagreements;
        print_string (Wmm_synth.Conform.render report);
        print_newline ())
      archs;
    record_exploration engine;
    prerr_endline (Wmm_engine.Engine.render_summary engine);
    Option.iter
      (fun path ->
        try Wmm_engine.Engine.write_telemetry engine path
        with Sys_error msg -> Printf.eprintf "warning: cannot write telemetry: %s\n" msg)
      telemetry_out;
    if !disagreements > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "conform"
       ~doc:
         "Differential conformance over a synthesized litmus battery: pruned search vs \
          reference enumeration, operational machine vs axiomatic models, fence \
          inference; disagreements are shrunk to minimal failing tests")
    Term.(
      const run $ engine_arg $ arch_arg $ max_edges_arg $ limit_arg $ infer_limit_arg
      $ jobs_arg $ no_cache_arg $ cache_dir_arg $ telemetry_arg $ retries_arg
      $ resume_arg)

(* ------------------------------------------------------------------ *)
(* lang                                                                *)
(* ------------------------------------------------------------------ *)

let lang_cmd =
  let action_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ACTION" ~doc:"explore, conform, or rank")
  in
  let tests_arg =
    Arg.(
      value & opt_all string []
      & info [ "test" ] ~docv:"NAME"
          ~doc:
            "Lock-suite or litmus-library name (repeatable); default is the lock \
             suite (plus the lifted library for conform)")
  in
  let schemes_arg =
    Arg.(
      value & opt_all string []
      & info [ "scheme" ] ~docv:"SCHEME"
          ~doc:
            "Compilation scheme (repeatable): arm-native, arm-fenced, power-sync; \
             default is every scheme (conform) or the canonical per-arch pair (rank)")
  in
  let limit_arg =
    Arg.(
      value & opt int 0
      & info [ "limit" ] ~docv:"N" ~doc:"Battery cap (0 = the whole battery)")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker domains for the execution engine (0 = auto-detect)")
  in
  let no_cache_arg =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the result cache")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt string Wmm_engine.Cache.default_dir
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Result cache directory")
  in
  let telemetry_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE" ~doc:"Dump run telemetry as JSON to $(docv)")
  in
  let retries_arg =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retries (with capped exponential backoff) for transient task failures")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"RUN-ID"
          ~doc:
            "Journal run id to resume; without this flag a run id is derived from the \
             request, so rerunning an interrupted identical invocation resumes \
             automatically.")
  in
  let run engine action test_names scheme_names limit jobs no_cache cache_dir
      telemetry_out retries resume =
    apply_engine engine;
    let open Wmm_lang in
    if not (List.mem action [ "explore"; "conform"; "rank" ]) then
      die "unknown lang action %S; valid actions: explore conform rank" action;
    let schemes ~default =
      match scheme_names with
      | [] -> default
      | names ->
          List.map
            (fun name ->
              match Compile.scheme_of_string name with
              | Some s -> s
              | None ->
                  die "unknown compilation scheme %S; valid schemes: %s" name
                    (String.concat " " (List.map Compile.scheme_name Compile.all_schemes)))
            names
    in
    let resolve_tests ~default =
      match test_names with
      | [] -> default ()
      | names ->
          List.map
            (fun name ->
              let base =
                if Filename.check_suffix name "+c11" then Filename.chop_suffix name "+c11"
                else name
              in
              match Locks.by_name name with
              | Some l -> Locks.test_of l
              | None -> (
                  match Wmm_litmus.Library.by_name base with
                  | Some t -> C11.lift_test t
                  | None ->
                      die "unknown lang test %S (a lock name or a litmus-library name)"
                        name))
            names
    in
    let cap tests = List.filteri (fun i _ -> limit = 0 || i < limit) tests in
    let cache =
      if no_cache then Wmm_engine.Cache.disabled
      else Wmm_engine.Cache.create ~dir:cache_dir ()
    in
    let journal =
      let run_id =
        match resume with
        | Some id -> Some id
        | None when no_cache -> None
        | None ->
            Some
              (Wmm_engine.Journal.derived_run_id ~tag:"lang"
                 ([
                    Wmm_engine.Cache.code_version ();
                    action;
                    string_of_int limit;
                  ]
                 @ List.sort compare test_names
                 @ List.sort compare scheme_names))
      in
      Option.map
        (fun run_id ->
          let dir = Filename.concat cache_dir "journal" in
          let j = Wmm_engine.Journal.open_ ~dir ~run_id () in
          Printf.eprintf "journal: run id %s (%d completed tasks on file)\n%!" run_id
            (Wmm_engine.Journal.loaded j);
          j)
        run_id
    in
    let engine = Wmm_engine.Engine.create ~jobs ~cache ~retries ?journal () in
    let failed = ref false in
    (match action with
    | "explore" ->
        let battery =
          cap (resolve_tests ~default:(fun () -> List.map Locks.test_of Locks.all))
        in
        List.iter
          (fun (t : Wmm_litmus.Test.t) ->
            let outcomes =
              Wmm_model.Enumerate.allowed_outcomes Wmm_model.Axiomatic.Rc11
                t.Wmm_litmus.Test.program
            in
            let witness =
              Wmm_model.Enumerate.outcome_allowed Wmm_model.Axiomatic.Rc11
                t.Wmm_litmus.Test.program
                {
                  Wmm_model.Enumerate.registers = t.Wmm_litmus.Test.condition;
                  memory = t.Wmm_litmus.Test.mem_condition;
                }
            in
            Printf.printf "explore|%s|outcomes=%d|witness=%s\n"
              t.Wmm_litmus.Test.name (List.length outcomes)
              (if witness then "allow" else "forbid"))
          battery
    | "conform" ->
        let battery =
          cap
            (resolve_tests ~default:(fun () ->
                 List.map C11.lift_test Wmm_litmus.Library.all
                 @ List.map Locks.test_of Locks.all))
        in
        let report =
          Contain.run ~schemes:(schemes ~default:Compile.all_schemes) ~engine battery
        in
        print_string (Contain.render report);
        if report.Contain.disagreements <> [] then failed := true
    | _rank ->
        let locks =
          match test_names with
          | [] -> Locks.all
          | names ->
              List.map
                (fun name ->
                  match Locks.by_name name with
                  | Some l -> l
                  | None ->
                      die "unknown lock %S; valid locks: %s" name
                        (String.concat " "
                           (List.map (fun (l : Locks.t) -> l.Locks.name) Locks.all)))
                names
        in
        let schemes = schemes ~default:Rank.default_schemes in
        let rows = Rank.run ~schemes ~locks ~engine () in
        print_string (Rank.render ~schemes rows);
        List.iter (fun r -> print_endline (Rank.row_line r)) rows);
    record_exploration engine;
    prerr_endline (Wmm_engine.Engine.render_summary engine);
    Option.iter
      (fun path ->
        try Wmm_engine.Engine.write_telemetry engine path
        with Sys_error msg -> Printf.eprintf "warning: cannot write telemetry: %s\n" msg)
      telemetry_out;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "lang"
       ~doc:
         "The C11/RC11 language tier: explore RC11-allowed outcomes, check \
          compilation containment (hardware outcomes of the compiled program \
          must stay within the RC11-allowed set), or rank the lock suite by \
          fencing sensitivity under one-step memory-order weakenings")
    Term.(
      const run $ engine_arg $ action_arg $ tests_arg $ schemes_arg $ limit_arg
      $ jobs_arg $ no_cache_arg $ cache_dir_arg $ telemetry_arg $ retries_arg
      $ resume_arg)

(* ------------------------------------------------------------------ *)
(* cache                                                               *)
(* ------------------------------------------------------------------ *)

let default_socket = Filename.concat (Filename.get_temp_dir_name ()) "wmm_served.sock"

let socket_arg =
  Arg.(
    value & opt string default_socket
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path of the daemon")

let serve_cmd =
  let jobs_arg =
    Arg.(
      value & opt int 0
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains kept warm across requests (0 = auto-detect via \
             Domain.recommended_domain_count; 1 = sequential)")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Disable the result cache and the resume journal")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt string Wmm_engine.Cache.default_dir
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Result cache directory")
  in
  let run_id_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "run-id" ] ~docv:"RUN-ID"
          ~doc:
            "Journal run id; defaults to a stable derived id, so a restarted daemon \
             resumes the journal of the previous one")
  in
  let executors_arg =
    Arg.(
      value & opt int 4
      & info [ "executors" ] ~docv:"N" ~doc:"Request-servicing threads")
  in
  let queue_bound_arg =
    Arg.(
      value & opt int 256
      & info [ "queue-bound" ] ~docv:"N"
          ~doc:
            "Admitted-but-unfinished request bound; beyond it requests are shed with \
             a structured 'overloaded' reply")
  in
  let client_queue_bound_arg =
    Arg.(
      value & opt int 64
      & info [ "client-queue-bound" ] ~docv:"N"
          ~doc:
            "Buffered response lines per client before the producer blocks \
             (back-pressure on slow readers)")
  in
  let telemetry_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:
            "Dump run telemetry (including the server request counters) as JSON to \
             $(docv) on shutdown")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Per-request log lines on stderr")
  in
  let run socket jobs no_cache cache_dir run_id executors queue_bound
      client_queue_bound telemetry_out verbose =
    if executors < 1 then die "--executors must be at least 1";
    if queue_bound < 1 then die "--queue-bound must be at least 1";
    if client_queue_bound < 1 then die "--client-queue-bound must be at least 1";
    Wmm_served.Server.serve
      {
        Wmm_served.Server.socket_path = socket;
        jobs;
        cache_dir = (if no_cache then None else Some cache_dir);
        run_id;
        executors;
        queue_bound;
        client_queue_bound;
        telemetry_out;
        verbose;
      }
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the exploration daemon: a newline-delimited-JSON service over a \
          Unix-domain socket, with a warm domain pool, request-level caching, \
          in-flight deduplication and crash-resumable journaling")
    Term.(
      const run $ socket_arg $ jobs_arg $ no_cache_arg $ cache_dir_arg $ run_id_arg
      $ executors_arg $ queue_bound_arg $ client_queue_bound_arg $ telemetry_arg
      $ verbose_arg)

let query_cmd =
  let op_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"OP"
          ~doc:
            "Request op: litmus, analyze, conform, cache-stats, stats, ping, or \
             shutdown (required unless --stdin)")
  in
  let stdin_arg =
    Arg.(
      value & flag
      & info [ "stdin" ]
          ~doc:
            "Bulk mode: read one JSON request per stdin line, pipeline them all, and \
             print every response line as it arrives")
  in
  let tests_arg =
    Arg.(
      value & opt_all string []
      & info [ "test" ] ~docv:"NAME"
          ~doc:"Litmus test name (repeatable); default is the whole library")
  in
  let file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:"Send the litmus-format program in $(docv) as the query")
  in
  let model_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "model" ] ~docv:"MODEL"
          ~doc:"Restrict litmus checking to one model (see `wmm_bench list` models)")
  in
  let random_arg =
    Arg.(
      value & flag
      & info [ "random" ]
          ~doc:"Random-scheduling litmus runs instead of exhaustive exploration")
  in
  let iterations_arg =
    Arg.(
      value & opt int 2000
      & info [ "iterations" ] ~docv:"N" ~doc:"Random-run count (with --random)")
  in
  let arch_s_arg =
    Arg.(
      value & opt string "arm"
      & info [ "arch" ] ~docv:"ARCH" ~doc:"arm or power (analyze / conform)")
  in
  let cost_arg =
    Arg.(
      value & flag
      & info [ "cost" ] ~doc:"Include the simulator cost-ranking phase (analyze)")
  in
  let max_edges_arg =
    Arg.(
      value & opt int 2
      & info [ "max-edges" ] ~docv:"N" ~doc:"Battery cycle-size bound (conform)")
  in
  let limit_arg =
    Arg.(
      value & opt int 64
      & info [ "limit" ] ~docv:"N" ~doc:"Battery size cap (conform)")
  in
  let infer_limit_arg =
    Arg.(
      value & opt int 16
      & info [ "infer-limit" ] ~docv:"N" ~doc:"Inference-layer cap (conform)")
  in
  let engine_s_arg =
    Arg.(
      value & opt string "auto"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"Exploration engine: pruned, graph, reference, or auto (conform)")
  in
  let retries_arg =
    Arg.(
      value & opt int 3
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Resends per request on an 'overloaded' shed or a dropped \
             connection before giving up (seeded-jitter backoff honouring the \
             server's retry_after_ms hint)")
  in
  let retry_seed_arg =
    Arg.(
      value & opt int 0
      & info [ "retry-seed" ] ~docv:"SEED"
          ~doc:"Seed of the retry jitter stream (same seed, same schedule)")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-request deadline: an unanswered request is cut off with a \
             'deadline_exceeded' frame after $(docv) milliseconds")
  in
  let action_arg =
    Arg.(
      value & opt string "conform"
      & info [ "action" ] ~docv:"ACTION"
          ~doc:"Lang action: explore, conform, or rank (lang)")
  in
  let schemes_arg =
    Arg.(
      value & opt_all string []
      & info [ "scheme" ] ~docv:"SCHEME" ~doc:"Compilation scheme (repeatable; lang)")
  in
  let run socket op stdin_mode tests file model random iterations arch_s cost
      max_edges limit infer_limit engine_s action schemes retries retry_seed
      deadline_ms =
    if retries < 0 then die "--retries must be non-negative";
    if Wmm_model.Enumerate.engine_of_string engine_s = None then
      die "unknown engine %S; valid engines: %s" engine_s
        (String.concat " "
           (List.map Wmm_model.Enumerate.engine_name Wmm_model.Enumerate.all_engines));
    Option.iter
      (fun m ->
        if Wmm_registry.Registry.model_of_string m = None then
          die "unknown model %S; %s" m Wmm_registry.Registry.valid_models_sentence)
      model;
    let request_lines =
      if stdin_mode then begin
        let lines = ref [] in
        (try
           while true do
             let line = input_line stdin in
             if String.trim line <> "" then lines := line :: !lines
           done
         with End_of_file -> ());
        List.rev !lines
      end
      else begin
        let op =
          match op with Some op -> op | None -> die "OP required unless --stdin"
        in
        let open Wmm_served.Json in
        let str_list l = Arr (List.map (fun s -> Str s) l) in
        let fields =
          match op with
          | "litmus" ->
              (if tests = [] then [] else [ ("tests", str_list tests) ])
              @ (match file with
                | None -> []
                | Some path -> (
                    match In_channel.with_open_text path In_channel.input_all with
                    | text -> [ ("program", Str text) ]
                    | exception Sys_error e -> die "%s" e))
              @ (match model with None -> [] | Some m -> [ ("model", Str m) ])
              @
              if random then
                [ ("mode", Str "random"); ("iterations", of_int iterations) ]
              else [ ("mode", Str "exhaustive") ]
          | "analyze" ->
              (if tests = [] then [] else [ ("tests", str_list tests) ])
              @ [ ("arch", Str arch_s); ("cost", Bool cost) ]
          | "conform" ->
              [
                ("arch", Str arch_s);
                ("max_edges", of_int max_edges);
                ("limit", of_int limit);
                ("infer_limit", of_int infer_limit);
                ("engine", Str engine_s);
              ]
          | "lang" ->
              [ ("action", Str action) ]
              @ (if tests = [] then [] else [ ("tests", str_list tests) ])
              @ (if schemes = [] then [] else [ ("schemes", str_list schemes) ])
              @ [ ("limit", of_int 0) ]
          | _ -> []
        in
        let fields =
          fields
          @
          match deadline_ms with
          | None -> []
          | Some d -> [ ("deadline_ms", of_int d) ]
        in
        [ to_string (Obj (("op", Str op) :: fields)) ]
      end
    in
    let policy =
      {
        Wmm_served.Client.default_policy with
        max_attempts = retries + 1;
        seed = retry_seed;
      }
    in
    (* Exit codes (documented in README): 0 all ok; 1 a per-request
       error or deadline_exceeded frame; 2 usage; 3 still overloaded
       after the retry budget; 4 transport failure.  Transport beats
       frame-level errors beats overload. *)
    match Wmm_served.Client.run_resilient ~socket_path:socket ~policy request_lines with
    | Error e ->
        prerr_endline ("wmm_bench: " ^ e);
        exit 4
    | Ok out ->
        let failed = ref false and overloaded = ref false in
        List.iter
          (fun line ->
            print_endline line;
            match Wmm_served.Json.str_member "status"
                    (Result.value ~default:Wmm_served.Json.Null
                       (Wmm_served.Json.parse line))
            with
            | Some "ok" -> ()
            | Some "overloaded" -> overloaded := true
            | _ -> failed := true)
          out.Wmm_served.Client.lines;
        if out.Wmm_served.Client.gave_up_overloaded <> [] then overloaded := true;
        if !failed then exit 1 else if !overloaded then exit 3
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Query a running exploration daemon (see $(b,serve)); prints the raw \
          newline-delimited-JSON responses.  Retries shed requests and replays \
          unanswered ones over a fresh connection if the daemon restarts.  \
          Exit codes: 0 all responses ok, 1 a request was answered with an \
          error or deadline_exceeded frame, 2 usage error, 3 still overloaded \
          after the retry budget, 4 transport failure")
    Term.(
      const run $ socket_arg $ op_arg $ stdin_arg $ tests_arg $ file_arg $ model_arg
      $ random_arg $ iterations_arg $ arch_s_arg $ cost_arg $ max_edges_arg
      $ limit_arg $ infer_limit_arg $ engine_s_arg $ action_arg $ schemes_arg
      $ retries_arg $ retry_seed_arg $ deadline_arg)

(* ------------------------------------------------------------------ *)

let cache_cmd =
  let action_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ACTION" ~doc:"stats, clear, prune, or fsck")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt string Wmm_engine.Cache.default_dir
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Result cache directory")
  in
  let max_mb_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-mb" ] ~docv:"N" ~doc:"Size budget for prune, in megabytes")
  in
  let run_id_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "run-id" ] ~docv:"RUN-ID"
          ~doc:"Restrict fsck's journal scan to one run id (default: every \
                journal under the cache directory)")
  in
  let run action cache_dir max_mb run_id =
    let cache = Wmm_engine.Cache.create ~dir:cache_dir () in
    let usage () =
      match Wmm_engine.Cache.disk_usage cache with
      | Some (entries, bytes) ->
          Printf.printf "%s: %d entries, %.2f MB\n" cache_dir entries
            (float_of_int bytes /. (1024. *. 1024.))
      | None -> print_endline "cache disabled"
    in
    match action with
    | "stats" -> usage ()
    | "clear" ->
        Printf.printf "removed %d entries\n" (Wmm_engine.Cache.clear cache);
        usage ()
    | "prune" -> (
        match max_mb with
        | None -> die "cache prune requires --max-mb N"
        | Some mb when mb < 0 -> die "--max-mb must be non-negative"
        | Some mb ->
            Printf.printf "pruned %d entries (oldest first)\n"
              (Wmm_engine.Cache.prune cache ~max_bytes:(mb * 1024 * 1024));
            usage ())
    | "fsck" ->
        let r = Wmm_engine.Cache.fsck cache in
        Printf.printf
          "cache: scanned %d entries, %d verified, %d quarantined (.corrupt), \
           %d legacy unverified\n"
          r.Wmm_engine.Cache.f_scanned r.Wmm_engine.Cache.f_ok
          r.Wmm_engine.Cache.f_quarantined r.Wmm_engine.Cache.f_unverified;
        let journal_dir = Filename.concat cache_dir "journal" in
        let run_ids =
          match run_id with
          | Some id -> [ id ]
          | None -> (
              (* Journal filenames are the sanitised run ids, so the
                 directory listing IS the run-id list. *)
              match Sys.readdir journal_dir with
              | names ->
                  Array.to_list names
                  |> List.filter (fun n -> Filename.check_suffix n ".jsonl")
                  |> List.map (fun n -> Filename.chop_suffix n ".jsonl")
                  |> List.sort compare
              | exception Sys_error _ -> [])
        in
        List.iter
          (fun id ->
            let j =
              Wmm_engine.Journal.fsck ~dir:journal_dir ~run_id:id ()
            in
            Printf.printf
              "journal %s: %d lines, %d ok, %d failed, %d torn, %d duplicate, \
               %d orphaned; kept %d%s\n"
              id j.Wmm_engine.Journal.j_lines j.Wmm_engine.Journal.j_ok
              j.Wmm_engine.Journal.j_failed j.Wmm_engine.Journal.j_torn
              j.Wmm_engine.Journal.j_duplicates j.Wmm_engine.Journal.j_orphans
              j.Wmm_engine.Journal.j_kept
              (if j.Wmm_engine.Journal.j_compacted then " (compacted)" else ""))
          run_ids
    | other ->
        die "unknown cache action %S; valid actions: stats clear prune fsck" other
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Inspect, trim or verify the result cache (stats | clear | prune | \
          fsck).  fsck digest-checks every cache entry (quarantining damaged \
          ones as .corrupt) and scans journals for torn, duplicate or orphaned \
          records, compacting when it finds any")
    Term.(const run $ action_arg $ cache_dir_arg $ max_mb_arg $ run_id_arg)

(* ------------------------------------------------------------------ *)
(* chaos                                                               *)
(* ------------------------------------------------------------------ *)

let chaos_cmd =
  let default_dir = Filename.concat (Filename.get_temp_dir_name ()) "wmm_chaos" in
  let seed_arg =
    Arg.(
      value & opt int 7
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Fault-schedule seed: same seed + same binary = same faults and \
                the same verdict lines")
  in
  let dir_arg =
    Arg.(
      value & opt string default_dir
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Scratch directory for the daemon's socket and cache ($(b,wiped) \
                at the start of the run)")
  in
  let bin_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bin" ] ~docv:"PATH"
          ~doc:"wmm_bench binary to spawn as the daemon (default: this binary)")
  in
  let battery_arg =
    Arg.(
      value & opt int 0
      & info [ "battery" ] ~docv:"N"
          ~doc:"Cap the litmus battery at $(docv) tests (0 = whole library)")
  in
  let kills_arg =
    Arg.(value & opt int 3 & info [ "kills" ] ~docv:"N" ~doc:"kill -9 + restart cycles")
  in
  let corruptions_arg =
    Arg.(
      value & opt int 2
      & info [ "corruptions" ] ~docv:"N" ~doc:"Cache entries garbled on disk")
  in
  let disconnects_arg =
    Arg.(
      value & opt int 2
      & info [ "disconnects" ] ~docv:"N" ~doc:"Clients yanked mid-stream")
  in
  let probes_arg =
    Arg.(
      value & opt int 1
      & info [ "deadline-probes" ] ~docv:"N"
          ~doc:"Doomed requests that must be answered 'deadline_exceeded'")
  in
  let slow_arg =
    Arg.(
      value & opt int 20_000
      & info [ "slow-iterations" ] ~docv:"N"
          ~doc:"Iterations of the slow requests kept in flight across kills")
  in
  let jobs_arg =
    Arg.(value & opt int 2 & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Daemon worker domains")
  in
  let executors_arg =
    Arg.(value & opt int 2 & info [ "executors" ] ~docv:"N" ~doc:"Daemon executor threads")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Pass the daemon's stderr through")
  in
  let run seed dir bin battery kills corruptions disconnects probes slow jobs
      executors verbose =
    if kills < 1 && corruptions > 0 then
      die "--corruptions needs --kills >= 1 (a live daemon's in-memory journal \
           shadows corrupted cache entries)";
    let bin = match bin with Some b -> b | None -> Sys.executable_name in
    let cfg =
      {
        (Wmm_chaos.Chaos.default_config ~bin ~dir) with
        Wmm_chaos.Chaos.seed;
        battery_limit = battery;
        kills;
        corruptions;
        disconnects;
        deadline_probes = probes;
        slow_iterations = slow;
        jobs;
        executors;
        verbose;
      }
    in
    let report = Wmm_chaos.Chaos.run cfg in
    print_string (Wmm_chaos.Chaos.render report);
    if not (Wmm_chaos.Chaos.ok report) then exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Drive a live daemon through a seeded fault schedule (kill -9, cache \
          corruption, torn journals, mid-stream disconnects, doomed deadlines) \
          and verify that battery verdicts stay identical to a pristine \
          one-shot computation and that every fault is accounted for in \
          telemetry.  Lines starting with 'verdict|' are deterministic for a \
          fixed seed and binary; exits 1 on any mismatch or accounting gap")
    Term.(
      const run $ seed_arg $ dir_arg $ bin_arg $ battery_arg $ kills_arg
      $ corruptions_arg $ disconnects_arg $ probes_arg $ slow_arg $ jobs_arg
      $ executors_arg $ verbose_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "wmm_bench" ~version:"1.0.0"
      ~doc:"Benchmarking weak memory models (PPoPP 2016) - reproduction suite"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            list_cmd;
            litmus_cmd;
            litmus_table_cmd;
            asm_cmd;
            micro_cmd;
            sensitivity_cmd;
            figure_cmd;
            analyze_cmd;
            check_cmd;
            conform_cmd;
            lang_cmd;
            serve_cmd;
            query_cmd;
            cache_cmd;
            chaos_cmd;
          ]))
