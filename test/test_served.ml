(* The exploration daemon: protocol parsing, canonical keys, and a
   real in-process server exercised over its Unix socket - verdicts
   bit-identical to the one-shot path, in-flight dedup, overload
   shedding, and journal-warm restart. *)

let () = Unix.putenv "WMM_FAST" "1"

open Wmm_served
open Wmm_litmus

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wmm_served_%d_%.0f" (Unix.getpid ())
         (Unix.gettimeofday () *. 1e6))
  in
  Unix.mkdir dir 0o755;
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* JSON *)

let parse_ok s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "JSON %S rejected: %s" s e

let test_json_roundtrip () =
  let cases =
    [
      {|null|};
      {|true|};
      {|42|};
      {|-3.5|};
      {|"he\"llo\n"|};
      {|[1, 2, [], {"a": false}]|};
      {|{"op": "litmus", "tests": ["SB", "MP"], "n": 7}|};
    ]
  in
  List.iter
    (fun s ->
      let v = parse_ok s in
      let v' = parse_ok (Json.to_string v) in
      if v <> v' then Alcotest.failf "round trip changed %S" s)
    cases;
  (match Json.parse {|{"a": 1} trailing|} with
  | Ok _ -> Alcotest.fail "trailing garbage accepted"
  | Error e -> Alcotest.(check bool) "error locates the byte" true (e <> ""));
  (match Json.parse {|{"a": }|} with
  | Ok _ -> Alcotest.fail "malformed object accepted"
  | Error _ -> ());
  let v = parse_ok {|{"s": "x", "n": 3, "b": true, "l": ["a", "b"]}|} in
  Alcotest.(check (option string)) "str_member" (Some "x") (Json.str_member "s" v);
  Alcotest.(check (option int)) "int_member" (Some 3) (Json.int_member "n" v);
  Alcotest.(check (option bool)) "bool_member" (Some true) (Json.bool_member "b" v);
  Alcotest.(check (option (list string)))
    "list_member" (Some [ "a"; "b" ]) (Json.list_member "l" v);
  Alcotest.(check (option string)) "missing member" None (Json.str_member "zz" v);
  (* Raw splices verbatim - the streaming path for cached items. *)
  Alcotest.(check string) "raw splice" {|{"item": {"x": 1}}|}
    (Json.to_string (Json.Obj [ ("item", Json.Raw {|{"x": 1}|}) ]))

(* ------------------------------------------------------------------ *)
(* Protocol *)

let parse_request_ok s =
  match Protocol.parse_request (parse_ok s) with
  | Ok env -> env
  | Error e -> Alcotest.failf "request %S rejected: %s" s e

let parse_request_err s =
  match Protocol.parse_request (parse_ok s) with
  | Ok _ -> Alcotest.failf "request %S accepted" s
  | Error e -> e

let test_protocol_requests () =
  let env = parse_request_ok {|{"op": "ping", "id": 7}|} in
  Alcotest.(check bool) "id echoed" true (env.Protocol.req_id = Json.Num 7.);
  Alcotest.(check bool) "ping parsed" true (env.Protocol.request = Protocol.Ping);
  Alcotest.(check bool) "ping not cacheable" false
    (Protocol.cacheable Protocol.Ping);
  let env =
    parse_request_ok
      {|{"op": "litmus", "tests": ["SB"], "model": "tso", "mode": "random", "iterations": 50}|}
  in
  (match env.Protocol.request with
  | Protocol.Litmus { tests = [ "SB" ]; model = Some Wmm_model.Axiomatic.Tso;
                      mode = Protocol.Random 50; program = None; certify = false } ->
      ()
  | _ -> Alcotest.fail "litmus fields mis-parsed");
  ignore (parse_request_err {|{"tests": ["SB"]}|});
  ignore (parse_request_err {|{"op": "frobnicate"}|});
  ignore (parse_request_err {|{"op": "litmus", "model": "weird"}|});
  ignore (parse_request_err {|{"op": "litmus", "mode": "random", "iterations": -3}|});
  ignore (parse_request_err {|{"op": "analyze", "arch": "mips"}|});
  ignore (parse_request_err {|{"op": "conform", "max_edges": 0}|})

let test_canonical_key_field_order_and_id () =
  let key s = Protocol.canonical_key (parse_request_ok s).Protocol.request in
  Alcotest.(check string) "field order and id do not matter"
    (key {|{"op": "litmus", "tests": ["SB"], "model": "tso", "id": 1}|})
    (key {|{"id": 99, "model": "TSO", "op": "litmus", "tests": ["SB"]}|});
  Alcotest.(check bool) "different queries, different keys" true
    (key {|{"op": "litmus", "tests": ["SB"]}|}
    <> key {|{"op": "litmus", "tests": ["MP"]}|});
  Alcotest.(check bool) "mode is part of the key" true
    (key {|{"op": "litmus", "tests": ["SB"], "mode": "random"}|}
    <> key {|{"op": "litmus", "tests": ["SB"], "mode": "exhaustive"}|});
  match Protocol.canonical_key Protocol.Ping with
  | _ -> Alcotest.fail "non-cacheable op should have no key"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* A real server over a real socket.                                  *)
(* ------------------------------------------------------------------ *)

let with_server cfg f =
  let thread = Thread.create (fun () -> Server.serve cfg) () in
  (* Wait for the socket to appear. *)
  let deadline = Unix.gettimeofday () +. 10. in
  while (not (Sys.file_exists cfg.Server.socket_path)) && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.01
  done;
  if not (Sys.file_exists cfg.Server.socket_path) then
    Alcotest.fail "server did not come up";
  let shutdown_sent = ref false in
  let shutdown () =
    if not !shutdown_sent then begin
      shutdown_sent := true;
      match Client.connect ~socket_path:cfg.Server.socket_path with
      | Error _ -> ()
      | Ok c ->
          ignore (Client.roundtrip c {|{"op": "shutdown"}|});
          Client.close c
    end
  in
  Fun.protect
    ~finally:(fun () ->
      shutdown ();
      Thread.join thread)
    (fun () -> f shutdown)

let connect cfg =
  match Client.connect ~socket_path:cfg.Server.socket_path with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" e

let roundtrip_ok c line =
  match Client.roundtrip c line with
  | Ok lines -> List.map parse_ok lines
  | Error e -> Alcotest.failf "roundtrip %S: %s" line e

let statuses frames =
  List.filter_map (fun v -> Json.str_member "status" v) frames

let item_describes frames =
  List.filter_map
    (fun v ->
      Option.bind (Json.member "item" v) (fun item -> Json.str_member "describe" item))
    frames

let served_from frames =
  List.filter_map (fun v -> Json.str_member "served_from" v) frames

let int_stat frames name =
  match frames with
  | [ v ] -> Option.value ~default:(-1) (Json.int_member name v)
  | _ -> -1

let quiet_cfg dir socket =
  {
    (Server.default_config ~socket_path:socket) with
    Server.jobs = 2;
    cache_dir = Some dir;
    run_id = Some "served-test";
    executors = 3;
  }

(* The expected one-shot verdicts for a library test under exhaustive
   exploration: exactly what ops.ml computes, derived independently
   through the public Check API. *)
let one_shot_describes name =
  let test =
    match Library.by_name name with
    | Some t -> t
    | None -> Alcotest.failf "unknown library test %s" name
  in
  List.filter_map
    (fun m ->
      if Test.expected_under test m = None then None
      else
        let config =
          match m with
          | Wmm_model.Axiomatic.Sc -> Wmm_machine.Relaxed.sc_config
          | Wmm_model.Axiomatic.Tso -> Wmm_machine.Relaxed.tso_config
          | Wmm_model.Axiomatic.Arm | Wmm_model.Axiomatic.Power ->
              Wmm_machine.Relaxed.relaxed_config
          | Wmm_model.Axiomatic.Rc11 -> Wmm_machine.Relaxed.sc_config
        in
        Some (Check.describe (Check.run_exhaustive m config test)))
    Wmm_model.Axiomatic.all_models

let test_server_verdicts_match_one_shot () =
  with_temp_dir (fun dir ->
      let socket = Filename.concat dir "s.sock" in
      let cfg = quiet_cfg dir socket in
      with_server cfg (fun _ ->
          let c = connect cfg in
          (* ping *)
          let frames = roundtrip_ok c {|{"op": "ping", "id": "p1"}|} in
          Alcotest.(check (list string)) "ping ok" [ "ok" ] (statuses frames);
          (* cold litmus: computed, and bit-identical to the one-shot path *)
          let frames = roundtrip_ok c {|{"op": "litmus", "tests": ["SB", "MP"]}|} in
          Alcotest.(check (list string)) "cold query computed" [ "computed" ]
            (served_from frames);
          Alcotest.(check (list string)) "verdicts match the one-shot CLI path"
            (one_shot_describes "SB" @ one_shot_describes "MP")
            (item_describes frames);
          (* warm repeat: served from journal or cache, never recomputed *)
          let frames = roundtrip_ok c {|{"op": "litmus", "tests": ["SB", "MP"]}|} in
          (match served_from frames with
          | [ ("journal" | "cache") ] -> ()
          | other ->
              Alcotest.failf "warm query recomputed (served_from %s)"
                (String.concat "," other));
          Alcotest.(check (list string)) "warm verdicts identical"
            (one_shot_describes "SB" @ one_shot_describes "MP")
            (item_describes frames);
          (* malformed request: a structured error, connection stays up *)
          (match Client.roundtrip c {|{"op": "litmus", "tests": ["no-such-test"]}|} with
          | Ok [ line ] ->
              Alcotest.(check (list string)) "semantic error reported" [ "error" ]
                (statuses [ parse_ok line ])
          | Ok _ | Error _ -> Alcotest.fail "error should be a single final frame");
          let frames = roundtrip_ok c {|{"op": "cache-stats"}|} in
          Alcotest.(check bool) "cache-stats reports stores" true
            (int_stat frames "stores" > 0);
          Client.close c))

let test_server_dedup_and_stats () =
  with_temp_dir (fun dir ->
      let socket = Filename.concat dir "s.sock" in
      let cfg = quiet_cfg dir socket in
      with_server cfg (fun _ ->
          (* N concurrent clients fire the identical cold query: the
             computation must run once, the rest joining in flight or
             hitting the cache/journal the owner filled. *)
          let n = 6 in
          let oks = Array.make n false in
          let threads =
            Array.init n (fun i ->
                Thread.create
                  (fun () ->
                    let c = connect cfg in
                    let frames = roundtrip_ok c {|{"op": "litmus", "tests": ["LB"]}|} in
                    oks.(i) <-
                      List.for_all (fun s -> s = "ok") (statuses frames)
                      && item_describes frames = one_shot_describes "LB";
                    Client.close c)
                  ())
          in
          Array.iter Thread.join threads;
          Array.iteri
            (fun i ok -> if not ok then Alcotest.failf "client %d: wrong answer" i)
            oks;
          let c = connect cfg in
          let frames = roundtrip_ok c {|{"op": "stats"}|} in
          Alcotest.(check int) "identical concurrent queries computed once" 1
            (int_stat frames "computed");
          Alcotest.(check int) "every request answered" n (int_stat frames "ok");
          Alcotest.(check bool) "the rest shared: inflight, cache or journal" true
            (int_stat frames "dedup_joined"
             + int_stat frames "cache_hits"
             + int_stat frames "journal_hits"
            = n - 1);
          Client.close c))

let test_server_overload_sheds () =
  with_temp_dir (fun dir ->
      let socket = Filename.concat dir "s.sock" in
      (* No cache, queue bound of 1: with a battery-sized request
         admitted first, the next request on the same connection is
         deterministically shed (the reader admits strictly in
         order). *)
      let cfg =
        {
          (Server.default_config ~socket_path:socket) with
          Server.jobs = 2;
          cache_dir = None;
          queue_bound = 1;
        }
      in
      with_server cfg (fun _ ->
          let c = connect cfg in
          match
            Client.run_batch c
              [ {|{"op": "litmus", "id": "big"}|}; {|{"op": "litmus", "id": "shed", "tests": ["SB"]}|} ]
          with
          | Error e -> Alcotest.failf "batch: %s" e
          | Ok lines ->
              let frames = List.map parse_ok lines in
              let by_id id =
                List.filter
                  (fun v -> Json.str_member "id" v = Some id)
                  frames
              in
              Alcotest.(check bool) "big request completes ok" true
                (List.for_all (fun s -> s = "ok") (statuses (by_id "big"))
                && statuses (by_id "big") <> []);
              (match by_id "shed" with
              | [ v ] ->
                  Alcotest.(check (list string)) "second request shed"
                    [ "overloaded" ] (statuses [ v ]);
                  Alcotest.(check bool) "shed reply carries retry hint" true
                    (match Json.int_member "retry_after_ms" v with
                    | Some ms -> ms > 0
                    | None -> false)
              | _ -> Alcotest.fail "shed reply should be a single frame");
              let sc = connect cfg in
              let stats = roundtrip_ok sc {|{"op": "stats"}|} in
              Alcotest.(check int) "shed counted" 1 (int_stat stats "overloaded");
              Client.close sc;
              Client.close c))

let test_server_deadline_exceeded () =
  with_temp_dir (fun dir ->
      let socket = Filename.concat dir "s.sock" in
      let cfg = quiet_cfg dir socket in
      with_server cfg (fun _ ->
          (* A doomed request: random-mode exploration sized to run for
             tens of seconds, with a 250ms deadline.  The cooperative
             cancellation token must kill it mid-task and the reply
             must be a structured deadline_exceeded frame - while a
             bystander on another connection keeps getting answers. *)
          let doomed =
            {|{"op": "litmus", "tests": ["SB"], "mode": "random", "iterations": 50000000, "deadline_ms": 250, "id": "doomed"}|}
          in
          let c = connect cfg in
          Client.send_line c doomed;
          (* Bystander: connects, works and disconnects while the
             doomed request is still dying. *)
          let b = connect cfg in
          let frames = roundtrip_ok b {|{"op": "ping"}|} in
          Alcotest.(check (list string)) "bystander ping answered" [ "ok" ]
            (statuses frames);
          let frames = roundtrip_ok b {|{"op": "litmus", "tests": ["SB"]}|} in
          Alcotest.(check bool) "bystander query completes" true
            (List.for_all (fun s -> s = "ok") (statuses frames) && statuses frames <> []);
          Client.close b;
          (* Now the doomed request's own reply. *)
          let rec drain acc =
            match Client.recv_line c with
            | None -> List.rev acc
            | Some line ->
                if Client.is_final line then List.rev (line :: acc)
                else drain (line :: acc)
          in
          (match drain [] with
          | [ line ] ->
              let v = parse_ok line in
              Alcotest.(check (option string)) "structured deadline frame"
                (Some "deadline_exceeded") (Json.str_member "status" v);
              Alcotest.(check (option string)) "deadline frame keeps the id"
                (Some "doomed") (Json.str_member "id" v)
          | other ->
              Alcotest.failf "doomed request: expected one final frame, got %d"
                (List.length other));
          let stats = roundtrip_ok c {|{"op": "stats"}|} in
          Alcotest.(check bool) "deadline death counted" true
            (int_stat stats "deadline_exceeded" >= 1);
          Client.close c))

let test_resilient_client_retries_through_shed () =
  with_temp_dir (fun dir ->
      let socket = Filename.concat dir "s.sock" in
      (* Same shedding setup as the overload test: queue bound 1, no
         cache.  The plain client surfaces the overloaded frame; the
         resilient client must absorb it - honour the retry hint, back
         off, resend - and eventually deliver both answers. *)
      let cfg =
        {
          (Server.default_config ~socket_path:socket) with
          Server.jobs = 2;
          cache_dir = None;
          queue_bound = 1;
        }
      in
      with_server cfg (fun _ ->
          let policy =
            { Client.default_policy with Client.max_attempts = 10; seed = 11 }
          in
          match
            Client.run_resilient ~socket_path:socket ~policy
              [
                {|{"op": "litmus", "id": "big", "tests": ["SB", "MP", "LB"]}|};
                {|{"op": "litmus", "id": "shed", "tests": ["SB"]}|};
              ]
          with
          | Error e -> Alcotest.failf "resilient batch: %s" e
          | Ok out ->
              Alcotest.(check (list string)) "nothing gave up" []
                out.Client.gave_up_overloaded;
              Alcotest.(check bool) "the shed request needed at least one resend"
                true (out.Client.retries >= 1);
              let frames = List.map parse_ok out.Client.lines in
              let finals_of id =
                List.filter
                  (fun v ->
                    Json.str_member "id" v = Some id
                    && Json.str_member "status" v <> None)
                  frames
              in
              List.iter
                (fun id ->
                  Alcotest.(check bool)
                    (Printf.sprintf "request %s answered ok after retries" id)
                    true
                    (statuses (finals_of id) <> []
                    && List.for_all (fun s -> s = "ok") (statuses (finals_of id))))
                [ "big"; "shed" ];
              (* The server saw the resends: retry-tagged requests are
                 counted. *)
              let sc = connect cfg in
              let stats = roundtrip_ok sc {|{"op": "stats"}|} in
              Alcotest.(check bool) "server counted client retries" true
                (int_stat stats "client_retries" >= 1);
              Client.close sc))

let test_server_restart_resumes_from_journal () =
  with_temp_dir (fun dir ->
      let socket = Filename.concat dir "s.sock" in
      let cfg = quiet_cfg dir socket in
      let query = {|{"op": "litmus", "tests": ["SB+dmbs"]}|} in
      let first = ref [] in
      with_server cfg (fun shutdown ->
          let c = connect cfg in
          let frames = roundtrip_ok c query in
          Alcotest.(check (list string)) "first run computes" [ "computed" ]
            (served_from frames);
          first := item_describes frames;
          Client.close c;
          shutdown ());
      (* Same run id, fresh process state: the journal answers. *)
      with_server cfg (fun shutdown ->
          let c = connect cfg in
          let frames = roundtrip_ok c query in
          Alcotest.(check (list string)) "restart answers from the journal"
            [ "journal" ] (served_from frames);
          Alcotest.(check (list string)) "journal items identical" !first
            (item_describes frames);
          let stats = roundtrip_ok c {|{"op": "stats"}|} in
          Alcotest.(check int) "restart computed nothing" 0
            (int_stat stats "computed");
          Client.close c;
          shutdown ()))

let suite =
  [
    Alcotest.test_case "json roundtrip and accessors" `Quick test_json_roundtrip;
    Alcotest.test_case "protocol request validation" `Quick test_protocol_requests;
    Alcotest.test_case "canonical key is content-addressed" `Quick
      test_canonical_key_field_order_and_id;
    Alcotest.test_case "server verdicts match one-shot" `Quick
      test_server_verdicts_match_one_shot;
    Alcotest.test_case "server dedups identical queries" `Quick
      test_server_dedup_and_stats;
    Alcotest.test_case "server sheds load when saturated" `Quick
      test_server_overload_sheds;
    Alcotest.test_case "deadline_ms kills a slow task, others live" `Quick
      test_server_deadline_exceeded;
    Alcotest.test_case "resilient client retries through shedding" `Quick
      test_resilient_client_retries_through_shed;
    Alcotest.test_case "server restart resumes from journal" `Quick
      test_server_restart_resumes_from_journal;
  ]
