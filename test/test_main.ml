(* Test entry point.  Quick tests run by default; the exhaustive
   litmus / model soundness sweeps are registered as slow tests
   (alcotest runs both under `dune runtest`). *)

let () =
  Alcotest.run "wmm-bench"
    [
      ("rng", Test_rng.suite);
      ("stats", Test_stats.suite);
      ("linalg+fit", Test_fit.suite);
      ("table", Test_table.suite);
      ("isa", Test_isa.suite);
      ("relation", Test_relation.suite);
      ("model", Test_model.suite);
      ("explore", Test_explore.suite);
      ("relaxed-machine", Test_relaxed.suite);
      ("perf-machine", Test_perf.suite);
      ("memsys", Test_memsys.suite);
      ("costfn", Test_costfn.suite);
      ("platform", Test_platform.suite);
      ("workload", Test_workload.suite);
      ("core", Test_core.suite);
      ("engine", Test_engine.suite);
      ("served", Test_served.suite);
      ("chaos", Test_chaos.suite);
      ("litmus", Test_litmus.suite);
      ("fuzz", Test_fuzz.suite);
      ("litmus-parse", Test_parse.suite);
      ("analysis", Test_analysis.suite);
      ("synth", Test_synth.suite);
      ("conform", Test_conform.suite);
      ("cert", Test_cert.suite);
      ("optimizer+counters", Test_optimizer.suite);
      ("rmw", Test_rmw.suite);
      ("lang", Test_lang.suite);
      ("experiments", Test_experiments.suite);
      ("experiments-slow", Test_experiments.slow_suite);
    ]
