open Wmm_isa
open Wmm_model
open Wmm_machine
open Wmm_litmus

(* ISA-level classification ------------------------------------------ *)

let ldxr = Instr.Load_exclusive { dst = 1; addr = Instr.Imm 0; order = Instr.Plain }

let stxr =
  Instr.Store_exclusive { status = 3; src = Instr.Reg 2; addr = Instr.Imm 0; order = Instr.Plain }

let test_classification () =
  Alcotest.(check bool) "ldxr writes dst" true (Instr.output_reg ldxr = Some 1);
  Alcotest.(check bool) "stxr writes status" true (Instr.output_reg stxr = Some 3);
  Alcotest.(check (list int)) "stxr reads src" [ 2 ] (Instr.input_regs stxr);
  Alcotest.(check bool) "both memory accesses" true
    (Instr.is_memory_access ldxr && Instr.is_memory_access stxr)

let test_assembly () =
  Alcotest.(check string) "ldxr" "ldxr x1, &m0" (Asm.instr Arch.Armv8 ldxr);
  Alcotest.(check string) "stxr" "stxr x3, x2, &m0" (Asm.instr Arch.Armv8 stxr);
  let acq = Instr.Load_exclusive { dst = 1; addr = Instr.Imm 0; order = Instr.Acquire } in
  Alcotest.(check string) "ldaxr" "ldaxr x1, &m0" (Asm.instr Arch.Armv8 acq)

let test_parser () =
  let text =
    "AArch64 cas\n\
     { x=0 }\n\
     ldxr x1, &x ;\n\
     add x2, x1, #1 ;\n\
     stxr x3, x2, &x ;\n\
     exists (0:x3=0 /\\ x=1)\n"
  in
  match Parse.parse text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok p ->
      Alcotest.(check bool) "single-thread CAS succeeds" true
        (Check.axiomatic_allowed Axiomatic.Sc p.Parse.test);
      let outcomes = Relaxed.enumerate Relaxed.relaxed_config p.Parse.test.Test.program in
      Alcotest.(check int) "deterministic" 1 (List.length outcomes);
      let o = List.hd outcomes in
      Alcotest.(check int) "status 0" 0 (List.assoc (0, 3) o.Relaxed.registers);
      Alcotest.(check int) "x incremented" 1 (List.assoc 0 o.Relaxed.memory)

(* Atomicity ---------------------------------------------------------- *)

let test_cas_both_forbidden_everywhere () =
  let t = Option.get (Library.by_name "CAS+both") in
  List.iter
    (fun model ->
      Alcotest.(check bool)
        (Axiomatic.model_name model ^ " forbids double success")
        false (Check.axiomatic_allowed model t))
    Axiomatic.all_models

let test_cas_racing_operational () =
  (* Exhaustive exploration of two racing CAS threads: exactly one
     succeeds whenever both read the same initial value. *)
  let t = Option.get (Library.by_name "CAS+one") in
  let outcomes = Relaxed.enumerate Relaxed.relaxed_config t.Test.program in
  List.iter
    (fun (o : Relaxed.outcome) ->
      let r1 t' = List.assoc (t', 1) o.Relaxed.registers in
      let status t' = List.assoc (t', 3) o.Relaxed.registers in
      if r1 0 = 0 && r1 1 = 0 then
        Alcotest.(check bool) "not both successful" false (status 0 = 0 && status 1 = 0))
    outcomes

let test_atomic_increment_loop () =
  (* The canonical retry loop: with two incrementing threads the
     final value is 2 in every reachable state. *)
  let thread =
    [|
      Instr.Load_exclusive { dst = 1; addr = Instr.Imm 0; order = Instr.Plain };
      Instr.Op { op = Instr.Add; dst = 2; a = Instr.Reg 1; b = Instr.Imm 1 };
      Instr.Store_exclusive
        { status = 3; src = Instr.Reg 2; addr = Instr.Imm 0; order = Instr.Plain };
      Instr.Cbnz { src = 3; offset = -4 };
    |]
  in
  let program =
    Program.make ~name:"incr" ~location_names:[| "x" |] [ thread; thread ]
  in
  let outcomes = Relaxed.enumerate ~max_states:200_000 Relaxed.relaxed_config program in
  Alcotest.(check bool) "some outcomes" true (outcomes <> []);
  List.iter
    (fun (o : Relaxed.outcome) ->
      Alcotest.(check int) "x = 2 always" 2 (List.assoc 0 o.Relaxed.memory))
    outcomes

let test_monitor_revoked_by_plain_store () =
  (* A plain store by another thread between ldxr and stxr makes the
     stxr fail in at least one interleaving. *)
  let program =
    Program.make ~name:"revoke" ~location_names:[| "x" |]
      [
        [|
          Instr.Load_exclusive { dst = 1; addr = Instr.Imm 0; order = Instr.Plain };
          Instr.Store_exclusive
            { status = 3; src = Instr.Imm 7; addr = Instr.Imm 0; order = Instr.Plain };
        |];
        [| Instr.Store { src = Instr.Imm 5; addr = Instr.Imm 0; order = Instr.Plain } |];
      ]
  in
  let outcomes = Relaxed.enumerate Relaxed.relaxed_config program in
  let failures =
    List.filter (fun (o : Relaxed.outcome) -> List.assoc (0, 3) o.Relaxed.registers = 1)
      outcomes
  in
  Alcotest.(check bool) "failure reachable" true (failures <> []);
  (* And when the exclusive fails, its store never lands. *)
  List.iter
    (fun (o : Relaxed.outcome) ->
      if List.assoc (0, 3) o.Relaxed.registers = 1 then
        Alcotest.(check bool) "no stray write" true (List.assoc 0 o.Relaxed.memory <> 7))
    failures

let test_atomicity_axiom_direct () =
  (* Hand-built execution violating atomicity: rmw (r, w) with an
     external write co-between. *)
  let events =
    [|
      { Event.id = 0; tid = -1; po_index = 0;
        action = Event.Write { loc = 0; value = 0; order = Instr.Plain } };
      { Event.id = 1; tid = 0; po_index = 0;
        action = Event.Read { loc = 0; value = 0; order = Instr.Plain } };
      { Event.id = 2; tid = 0; po_index = 1;
        action = Event.Write { loc = 0; value = 1; order = Instr.Plain } };
      { Event.id = 3; tid = 1; po_index = 0;
        action = Event.Write { loc = 0; value = 5; order = Instr.Plain } };
    |]
  in
  let x =
    {
      Execution.events;
      po = Relation.of_list [ (1, 2) ];
      rf = Relation.of_list [ (0, 1) ];
      co = Relation.of_list [ (0, 3); (3, 2); (0, 2) ];
      addr = Relation.empty;
      data = Relation.empty;
      ctrl = Relation.empty;
      rmw = Relation.of_list [ (1, 2) ];
    }
  in
  Alcotest.(check bool) "atomicity violated" false (Axiomatic.consistent Axiomatic.Sc x);
  let without_rmw = { x with Execution.rmw = Relation.empty } in
  Alcotest.(check bool) "fine without the rmw pair" true
    (Axiomatic.consistent Axiomatic.Sc without_rmw)

(* Store-conditional failure path -------------------------------------- *)

(* T0 runs a single-attempt increment; T1's plain store can revoke the
   monitor.  Built at any exclusive-access order so both the plain
   (ldxr/stxr) and ordered (ldaxr/stlxr) flavours are covered. *)
let stx_failure_program order =
  Program.make ~name:"stx-fail" ~location_names:[| "x" |]
    [
      [|
        Instr.Load_exclusive { dst = 1; addr = Instr.Imm 0; order };
        Instr.Op { op = Instr.Add; dst = 2; a = Instr.Reg 1; b = Instr.Imm 1 };
        Instr.Store_exclusive { status = 3; src = Instr.Reg 2; addr = Instr.Imm 0; order };
      |];
      [| Instr.Store { src = Instr.Imm 7; addr = Instr.Imm 0; order = Instr.Plain } |];
    ]

let hw_models = [ Axiomatic.Arm; Axiomatic.Power ]

let test_stx_failure_axiomatic () =
  List.iter
    (fun order ->
      let p = stx_failure_program order in
      List.iter
        (fun model ->
          let name fmt = Printf.sprintf fmt (Axiomatic.model_name model) in
          (* The failure path: T1's write lands co-between the
             exclusive pair, the store-conditional reports 1. *)
          Alcotest.(check bool) (name "%s: failure outcome reachable") true
            (Enumerate.outcome_allowed model p
               { Enumerate.registers = [ ((0, 3), 1) ]; memory = [ (0, 7) ] });
          (* A failed store-conditional must not have written: status 1
             with the increment in memory is an atomicity violation. *)
          Alcotest.(check bool) (name "%s: failed stx writes nothing") false
            (Enumerate.outcome_allowed model p
               { Enumerate.registers = [ ((0, 3), 1) ]; memory = [ (0, 1) ] });
          (* The success path still exists. *)
          Alcotest.(check bool) (name "%s: success outcome reachable") true
            (Enumerate.outcome_allowed model p
               { Enumerate.registers = [ ((0, 1), 0); ((0, 3), 0) ]; memory = [] }))
        hw_models)
    [ Instr.Plain; Instr.Acquire ]

let test_stx_failure_machine () =
  List.iter
    (fun order ->
      let p = stx_failure_program order in
      let outcomes = Relaxed.enumerate Relaxed.relaxed_config p in
      let failures =
        List.filter (fun (o : Relaxed.outcome) -> List.assoc (0, 3) o.Relaxed.registers = 1)
          outcomes
      in
      Alcotest.(check bool) "machine reaches the failure path" true (failures <> []);
      List.iter
        (fun (o : Relaxed.outcome) ->
          (* Failure means T1's store won the location. *)
          Alcotest.(check int) "failed stx leaves the racing store" 7
            (List.assoc 0 o.Relaxed.memory))
        failures;
      (* Machine containment on the failure path: every operational
         outcome is axiomatically allowed on both architectures. *)
      List.iter
        (fun (o : Relaxed.outcome) ->
          List.iter
            (fun model ->
              Alcotest.(check bool)
                (Axiomatic.model_name model ^ " allows machine outcome") true
                (Enumerate.outcome_allowed model p
                   { Enumerate.registers = o.Relaxed.registers; memory = o.Relaxed.memory }))
            hw_models)
        outcomes)
    [ Instr.Plain; Instr.Acquire ]

let suite =
  [
    Alcotest.test_case "classification" `Quick test_classification;
    Alcotest.test_case "assembly" `Quick test_assembly;
    Alcotest.test_case "parser + single-thread CAS" `Quick test_parser;
    Alcotest.test_case "CAS+both forbidden everywhere" `Quick
      test_cas_both_forbidden_everywhere;
    Alcotest.test_case "racing CAS operational" `Quick test_cas_racing_operational;
    Alcotest.test_case "atomic increment loop" `Quick test_atomic_increment_loop;
    Alcotest.test_case "monitor revoked by plain store" `Quick
      test_monitor_revoked_by_plain_store;
    Alcotest.test_case "atomicity axiom direct" `Quick test_atomicity_axiom_direct;
    Alcotest.test_case "stx failure path axiomatic" `Quick test_stx_failure_axiomatic;
    Alcotest.test_case "stx failure path machine" `Quick test_stx_failure_machine;
  ]
