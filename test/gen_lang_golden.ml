(* Regenerates test/data/lang_golden.txt: the language-tier verdict
   table.  For every lock workload (at its default orders) and a
   pinned set of lifted classic litmus tests, print whether the
   interesting condition is reachable under RC11 at the source and
   under the target hardware model for each canonical compilation
   scheme.  CI regenerates this table and diffs it against the
   checked-in copy. *)

open Wmm_model
open Wmm_litmus
open Wmm_lang

let schemes = [ Compile.Arm_native; Compile.Power_sync ]

let verdict model (t : Test.t) =
  let outcome =
    { Enumerate.registers = t.Test.condition; memory = t.Test.mem_condition }
  in
  if Enumerate.outcome_allowed model t.Test.program outcome then "Allow" else "Forbid"

let row (t : Test.t) =
  let cells =
    verdict Axiomatic.Rc11 t
    :: List.map
         (fun s -> verdict (Contain.hw_model s) (Compile.compile_test s t))
         schemes
  in
  Printf.printf "%-28s %s\n" t.Test.name (String.concat " " (List.map (Printf.sprintf "%-6s") cells))

let classic_names =
  [ "SB"; "SB+dmbs"; "MP"; "MP+dmb"; "MP+rel+acq"; "LB"; "LB+datas"; "SB+rel+acq";
    "IRIW"; "IRIW+dmbs"; "WRC"; "2+2W" ]

let () =
  Printf.printf "# lang golden: condition reachability at the language tier\n";
  Printf.printf "# columns: test  rc11  %s\n"
    (String.concat "  " (List.map Compile.scheme_name schemes));
  Printf.printf "## locks (defaults)\n";
  List.iter (fun l -> row (Locks.test_of l)) Locks.all;
  Printf.printf "## lifted classics\n";
  List.iter
    (fun name ->
      match Library.by_name name with
      | None -> Printf.printf "%-28s missing\n" name
      | Some t -> row (C11.lift_test t))
    classic_names
