(* Proof-carrying verdicts: the certificate tier.  Emission over the
   whole litmus library must roundtrip and pass the independent
   checker; every mutation of a certificate field must be rejected
   with a structured reason; a planted explorer bug (RMW atomicity
   dropped) must produce certificates the checker refuses; machine
   traces must replay through the checker's sequential interpreter;
   and the golden fixtures under data/ must regenerate byte-for-byte
   (refresh: `dune exec test/gen_cert_golden.exe >
   test/data/cert_golden.txt`). *)

open Wmm_isa
open Wmm_model
open Wmm_litmus
open Wmm_machine
open Wmm_cert
open Wmm_analysis

let fast = Sys.getenv_opt "WMM_FAST" <> None

let sb = Option.get (Library.by_name "SB")
let mp = Option.get (Library.by_name "MP")
let iriw = Option.get (Library.by_name "IRIW")

let emit (t : Test.t) model =
  match Wmm_certify.Emit.litmus model t with
  | Ok cert -> cert
  | Error msg ->
      Alcotest.failf "%s under %s: certificate emission failed: %s" t.Test.name
        (Axiomatic.model_name model) msg

let check_ok name cert =
  match Checker.check cert with
  | Ok () -> ()
  | Error r -> Alcotest.failf "%s: certificate rejected: %s" name (Checker.reason_string r)

let expect_reject name code cert =
  match Checker.check cert with
  | Ok () -> Alcotest.failf "%s: corrupted certificate accepted" name
  | Error r -> Alcotest.(check string) (name ^ ": reason code") code r.Checker.code

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* --- library sweep: emit, roundtrip, check ----------------------- *)

let test_library_certificates () =
  let tests =
    if fast then List.filteri (fun i _ -> i mod 4 = 0) Library.all else Library.all
  in
  List.iter
    (fun (t : Test.t) ->
      List.iter
        (fun model ->
          let cert = emit t model in
          let claimed_allowed =
            match cert.Certificate.claim with
            | Certificate.Allowed _ -> true
            | Certificate.Forbidden _ -> false
            | Certificate.Minimal _ ->
                Alcotest.failf "%s: litmus emission produced a minimality claim"
                  t.Test.name
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s under %s: claim matches the verdict" t.Test.name
               (Axiomatic.model_name model))
            (Check.axiomatic_allowed model t)
            claimed_allowed;
          let text = Certificate.to_string cert in
          (match Certificate.of_string text with
          | Error msg ->
              Alcotest.failf "%s under %s: reparse failed: %s" t.Test.name
                (Axiomatic.model_name model) msg
          | Ok reparsed ->
              if Certificate.to_string reparsed <> text then
                Alcotest.failf "%s under %s: serialization does not roundtrip"
                  t.Test.name (Axiomatic.model_name model);
              check_ok
                (Printf.sprintf "%s under %s" t.Test.name (Axiomatic.model_name model))
                reparsed))
        Axiomatic.all_models)
    tests

(* --- machine event traces replay canonically --------------------- *)

let test_machine_traces () =
  let seeds = if fast then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ] in
  List.iter
    (fun (t : Test.t) ->
      List.iter
        (fun (cfg_name, cfg) ->
          List.iter
            (fun seed ->
              let outcome, traces = Relaxed.run_traced cfg ~seed t.Test.program in
              let regs = ref [] in
              Array.iteri
                (fun tid actions ->
                  match
                    Replay.replay_thread t.Test.program.Program.threads.(tid) actions
                  with
                  | Ok run ->
                      regs :=
                        List.map (fun (r, v) -> ((tid, r), v)) run.Replay.r_regs @ !regs
                  | Error msg ->
                      Alcotest.failf "%s (%s, seed %d): thread %d trace rejected: %s"
                        t.Test.name cfg_name seed tid msg)
                traces;
              if List.sort compare !regs <> outcome.Relaxed.registers then
                Alcotest.failf
                  "%s (%s, seed %d): replayed registers differ from the machine run"
                  t.Test.name cfg_name seed)
            seeds)
        [
          ("sc", Relaxed.sc_config);
          ("tso", Relaxed.tso_config);
          ("relaxed", Relaxed.relaxed_config);
        ])
    Library.all

(* --- mutation tests: every corruption is rejected ----------------- *)

let with_claim cert claim = { cert with Certificate.claim }

let test_mutations_allowed () =
  (* MP without fences is allowed under ARMv8. *)
  let cert = emit mp Axiomatic.Arm in
  let w =
    match cert.Certificate.claim with
    | Certificate.Allowed w -> w
    | _ -> Alcotest.fail "MP under ARMv8 should be an allowed claim"
  in
  check_ok "pristine MP witness" cert;
  expect_reject "dropped rf edge" "rf-missing"
    (with_claim cert
       (Certificate.Allowed { w with Certificate.w_rf = List.tl w.Certificate.w_rf }));
  expect_reject "reversed co chain" "co-malformed"
    (with_claim cert
       (Certificate.Allowed
          {
            w with
            Certificate.w_co =
              List.map (fun (l, chain) -> (l, List.rev chain)) w.Certificate.w_co;
          }));
  expect_reject "forged final registers" "final-state-mismatch"
    (with_claim cert
       (Certificate.Allowed
          {
            w with
            Certificate.w_regs =
              List.map (fun (k, v) -> (k, v + 7)) w.Certificate.w_regs;
          }));
  expect_reject "forged final memory" "final-state-mismatch"
    (with_claim cert
       (Certificate.Allowed
          {
            w with
            Certificate.w_mem = List.map (fun (l, v) -> (l, v + 7)) w.Certificate.w_mem;
          }));
  (* Tampering with a read's claimed value desynchronises it from its
     rf source: the replay dutifully propagates the value, but the
     edge no longer relates equal values. *)
  let tampered = ref false in
  let bump (e : Trace.event) =
    match e.Trace.action with
    | Trace.Read { loc; value; order } when not !tampered ->
        tampered := true;
        { e with Trace.action = Trace.Read { loc; value = value + 3; order } }
    | _ -> e
  in
  expect_reject "tampered read value" "rf-mismatch"
    (with_claim cert
       (Certificate.Allowed
          { w with Certificate.w_events = List.map bump w.Certificate.w_events }))

let test_mutations_forbidden () =
  (* SB is forbidden under SC: 1 run combination, 4 rf/co candidates. *)
  let cert = emit sb Axiomatic.Sc in
  let f =
    match cert.Certificate.claim with
    | Certificate.Forbidden f -> f
    | _ -> Alcotest.fail "SB under SC should be a forbidden claim"
  in
  check_ok "pristine SB execution set" cert;
  expect_reject "truncated candidate list" "candidate-count-mismatch"
    (with_claim cert
       (Certificate.Forbidden
          {
            f with
            Certificate.f_combos =
              List.map
                (fun (x : Certificate.combo) ->
                  { x with Certificate.x_candidates = List.tl x.Certificate.x_candidates })
                f.Certificate.f_combos;
          }));
  expect_reject "dropped run combination" "combo-set-mismatch"
    (with_claim cert
       (Certificate.Forbidden
          { f with Certificate.f_combos = List.tl f.Certificate.f_combos }));
  expect_reject "forged candidate count" "count-mismatch"
    (with_claim cert
       (Certificate.Forbidden { f with Certificate.f_count = f.Certificate.f_count + 1 }));
  (* Padding a truncated set with a duplicate keeps the count right
     but trips the dedup.  SB's combos hold one candidate each (the
     run's values pin rf), so use 2+2W: no reads, one combo, and 2!x2!
     co permutations to duplicate within. *)
  let ttw = Option.get (Library.by_name "2+2W") in
  let cert = emit ttw Axiomatic.Sc in
  let f =
    match cert.Certificate.claim with
    | Certificate.Forbidden f -> f
    | _ -> Alcotest.fail "2+2W under SC should be a forbidden claim"
  in
  check_ok "pristine 2+2W execution set" cert;
  let padded =
    List.map
      (fun (x : Certificate.combo) ->
        match x.Certificate.x_candidates with
        | first :: _ :: rest ->
            { x with Certificate.x_candidates = first :: first :: rest }
        | _ -> x)
      f.Certificate.f_combos
  in
  Alcotest.(check bool) "duplication mutation applied" true
    (padded <> f.Certificate.f_combos);
  expect_reject "duplicated candidate" "duplicate-candidate"
    (with_claim cert (Certificate.Forbidden { f with Certificate.f_combos = padded }))

let test_mutations_minimal () =
  let strategy =
    [
      { Placement.tid = 0; at = 1; barrier = Instr.Dmb_ish };
      { Placement.tid = 1; at = 1; barrier = Instr.Dmb_ish };
    ]
  in
  let cert =
    match Wmm_certify.Emit.minimal Axiomatic.Tso sb strategy with
    | Ok cert -> cert
    | Error msg -> Alcotest.failf "minimality emission failed: %s" msg
  in
  check_ok "pristine SB minimality claim" cert;
  let m =
    match cert.Certificate.claim with
    | Certificate.Minimal m -> m
    | _ -> Alcotest.fail "expected a minimality claim"
  in
  expect_reject "out-of-range site" "site-malformed"
    (with_claim cert
       (Certificate.Minimal
          {
            m with
            Certificate.m_sites =
              List.map
                (fun (s : Certificate.site) ->
                  { s with Certificate.s_at = s.Certificate.s_at + 9 })
                m.Certificate.m_sites;
          }));
  expect_reject "dropped refutation" "refutation-missing"
    (with_claim cert
       (Certificate.Minimal
          { m with Certificate.m_refutations = List.tl m.Certificate.m_refutations }))

let test_version_guard () =
  let text = Certificate.to_string (emit sb Axiomatic.Sc) in
  let idx = String.index text '\n' in
  let tampered = "wmmcert 99" ^ String.sub text idx (String.length text - idx) in
  match Checker.check_string tampered with
  | Ok _ -> Alcotest.fail "future-versioned certificate accepted"
  | Error r ->
      Alcotest.(check string) "parse reason" "parse" r.Checker.code;
      Alcotest.(check bool) "detail names the version" true
        (contains ~sub:"version" r.Checker.detail)

(* --- planted bug: an explorer that forgets RMW atomicity ---------- *)

(* Both exclusives read the initial value and both store-exclusives
   succeed: forbidden by the atomicity axiom under every model.  The
   stored values are distinct and nonzero, so a chained RMW (one
   exclusive reading the other's write) cannot satisfy r1 = 0. *)
let planted =
  Test.make ~name:"planted-rmw"
    ~description:"both exclusives read init and both succeed"
    ~locations:[| "x" |]
    ~threads:
      [
        [|
          Test.addi ~dst:2 ~src:2 1;
          Test.ldxr ~dst:1 ~loc:0;
          Test.stxr ~status:0 ~src:2 ~loc:0;
        |];
        [|
          Test.addi ~dst:2 ~src:2 2;
          Test.ldxr ~dst:1 ~loc:0;
          Test.stxr ~status:0 ~src:2 ~loc:0;
        |];
      ]
    ~condition:[ ((0, 1), 0); ((0, 0), 0); ((1, 1), 0); ((1, 0), 0) ]
    ~expected:[ (Axiomatic.Sc, false) ]
    ()

(* The buggy explorer variant: consistency that waves the atomicity
   axiom through, as if RMW pairing had been dropped from the model.
   It happily "finds" a witness for the planted condition - and the
   certificate it emits carries that witness to the checker. *)
let buggy_allowed model (t : Test.t) =
  let cond = Wmm_certify.Emit.condition_of_test t in
  List.find_map
    (fun (x, o) ->
      if
        Wmm_certify.Emit.satisfies cond o
        && List.for_all (fun v -> v = "atomicity") (Axiomatic.violations model x)
      then
        Some
          {
            Certificate.model = Wmm_certify.Emit.cert_model model;
            program = t.Test.program;
            cond;
            claim = Certificate.Allowed (Wmm_certify.Emit.witness_of x o);
          }
      else None)
    (Enumerate.candidate_executions t.Test.program)

let instr_count (t : Test.t) =
  Array.fold_left (fun acc th -> acc + Array.length th) 0 t.Test.program.Program.threads

let test_planted_bug () =
  Alcotest.(check bool) "condition genuinely forbidden" false
    (Check.axiomatic_allowed Axiomatic.Sc planted);
  check_ok "honest forbidden certificate" (emit planted Axiomatic.Sc);
  let rejected_for_axiom (t : Test.t) =
    match buggy_allowed Axiomatic.Sc t with
    | None -> false
    | Some cert -> (
        match Checker.check cert with
        | Ok () -> false
        | Error r ->
            String.length r.Checker.code > 6 && String.sub r.Checker.code 0 6 = "axiom:")
  in
  Alcotest.(check bool) "buggy explorer's witness certificate is rejected" true
    (rejected_for_axiom planted);
  (match buggy_allowed Axiomatic.Sc planted with
  | Some cert -> expect_reject "planted bug reason" "axiom:atomicity" cert
  | None -> Alcotest.fail "buggy explorer found no witness");
  let shrunk = Wmm_synth.Conform.shrink rejected_for_axiom planted in
  Alcotest.(check bool) "shrunk test still exhibits the bug" true
    (rejected_for_axiom shrunk);
  Alcotest.(check bool) "shrinking did not grow the test" true
    (instr_count shrunk <= instr_count planted)

(* --- golden fixtures --------------------------------------------- *)

(* Keep in sync with gen_cert_golden.ml. *)
let co_storm =
  let st v = Instr.Store { src = Instr.Imm v; addr = Instr.Imm 0; order = Instr.Plain } in
  let ld r = Instr.Load { dst = r; addr = Instr.Imm 0; order = Instr.Plain } in
  Test.make ~name:"co-storm" ~description:"six writes, one observer thread"
    ~locations:[| "x" |]
    ~threads:[ [| st 1; st 2 |]; [| st 3; st 4 |]; [| st 5; st 6 |]; [| ld 0; ld 1 |] ]
    ~condition:[ ((3, 0), 5); ((3, 1), 6) ]
    ~expected:(List.map (fun m -> (m, true)) Axiomatic.all_models)
    ()

let golden_cases =
  List.concat_map
    (fun t -> List.map (fun m -> (t, m)) Axiomatic.all_models)
    [ sb; mp; iriw; co_storm ]

let golden_path () =
  if Sys.file_exists "data/cert_golden.txt" then "data/cert_golden.txt"
  else "test/data/cert_golden.txt"

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let parse_sections text =
  let sections = ref [] and header = ref None and buf = Buffer.create 1024 in
  let flush () =
    match !header with
    | None -> ()
    | Some (name, model) -> sections := (name, model, Buffer.contents buf) :: !sections
  in
  List.iter
    (fun line ->
      if String.length line > 3 && String.sub line 0 3 = "== " then begin
        flush ();
        Buffer.clear buf;
        match String.split_on_char ' ' line with
        | [ "=="; name; model; "==" ] -> header := Some (name, model)
        | _ -> Alcotest.failf "bad golden section header %S" line
      end
      else if line <> "" && !header <> None then Buffer.add_string buf (line ^ "\n"))
    (String.split_on_char '\n' text);
  flush ();
  List.rev !sections

let test_golden () =
  let sections = parse_sections (read_file (golden_path ())) in
  Alcotest.(check int) "golden fixture count" (List.length golden_cases)
    (List.length sections);
  List.iter2
    (fun ((t : Test.t), model) (name, model_name, text) ->
      Alcotest.(check string) "section test name" t.Test.name name;
      Alcotest.(check string) "section model" (Axiomatic.model_name model) model_name;
      if Certificate.to_string (emit t model) <> text then
        Alcotest.failf
          "%s under %s: regenerated certificate differs from the golden fixture \
           (refresh: dune exec test/gen_cert_golden.exe > test/data/cert_golden.txt)"
          name model_name;
      match Checker.check_string text with
      | Ok _ -> ()
      | Error r ->
          Alcotest.failf "%s under %s: golden certificate rejected: %s" name model_name
            (Checker.reason_string r))
    golden_cases sections

(* --- wmm_bench check: separate-process validation ---------------- *)

(* Same resolution as test_chaos: the test binary runs from inside
   _build, the bench binary is a declared dune dependency next to it. *)
let bench_bin () =
  match Sys.getenv_opt "WMM_BENCH_BIN" with
  | Some p -> p
  | None ->
      let build_root = Filename.dirname (Filename.dirname Sys.executable_name) in
      Filename.concat (Filename.concat build_root "bin") "wmm_bench.exe"

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_bench_check () =
  let dir = Filename.temp_file "wmm_certs" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  write_file (Filename.concat dir "sb__SC.cert")
    (Certificate.to_string (emit sb Axiomatic.Sc));
  write_file (Filename.concat dir "mp__ARMv8.cert")
    (Certificate.to_string (emit mp Axiomatic.Arm));
  let run () =
    Sys.command
      (Printf.sprintf "%s check %s >/dev/null 2>&1"
         (Filename.quote (bench_bin ()))
         (Filename.quote dir))
  in
  Alcotest.(check int) "all certificates accepted" 0 (run ());
  let text = Certificate.to_string (emit sb Axiomatic.Sc) in
  let idx = String.index text '\n' in
  write_file (Filename.concat dir "sb__SC.cert")
    ("wmmcert 99" ^ String.sub text idx (String.length text - idx));
  Alcotest.(check int) "corrupted certificate rejected" 1 (run ())

let suite =
  [
    Alcotest.test_case "library: certify, roundtrip, check" `Quick
      test_library_certificates;
    Alcotest.test_case "machine traces replay canonically" `Quick test_machine_traces;
    Alcotest.test_case "mutations: allowed witness" `Quick test_mutations_allowed;
    Alcotest.test_case "mutations: forbidden execution set" `Quick
      test_mutations_forbidden;
    Alcotest.test_case "mutations: minimality claim" `Quick test_mutations_minimal;
    Alcotest.test_case "version guard" `Quick test_version_guard;
    Alcotest.test_case "planted bug: RMW atomicity dropped" `Quick test_planted_bug;
    Alcotest.test_case "golden certificate fixtures" `Quick test_golden;
    Alcotest.test_case "wmm_bench check (separate process)" `Quick test_bench_check;
  ]
