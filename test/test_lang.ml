(* The language tier: RC11 verdicts on hand-built classics, the
   library lift, compilation branch-offset fixup, compilation
   containment on a pinned subset, lock-suite mutual exclusion at
   default and weakened orders, the fencing-sensitivity ranking, the
   language-level CAS failure path, and the golden verdict table. *)

open Wmm_isa
open Wmm_model
open Wmm_litmus
open Wmm_lang

let allowed model (t : Test.t) =
  Enumerate.outcome_allowed model t.Test.program
    { Enumerate.registers = t.Test.condition; memory = t.Test.mem_condition }

(* Hand-built classics at chosen C11 orders ---------------------------- *)

let mp ~mode_w ~mode_r =
  Test.make ~name:"mp-c11" ~description:"message passing"
    ~locations:[| "x"; "f" |]
    ~threads:
      [
        [| C11.store ~mode:C11.rlx ~value:1 ~loc:0; C11.store ~mode:mode_w ~value:1 ~loc:1 |];
        [| C11.load ~mode:mode_r ~dst:1 ~loc:1; C11.load ~mode:C11.rlx ~dst:2 ~loc:0 |];
      ]
    ~condition:[ ((1, 1), 1); ((1, 2), 0) ]
    ~expected:[] ()

let sb ~mode =
  Test.make ~name:"sb-c11" ~description:"store buffering"
    ~locations:[| "x"; "y" |]
    ~threads:
      [
        [| C11.store ~mode ~value:1 ~loc:0; C11.load ~mode ~dst:1 ~loc:1 |];
        [| C11.store ~mode ~value:1 ~loc:1; C11.load ~mode ~dst:1 ~loc:0 |];
      ]
    ~condition:[ ((0, 1), 0); ((1, 1), 0) ]
    ~expected:[] ()

let lb_rlx =
  Test.make ~name:"lb-c11" ~description:"load buffering"
    ~locations:[| "x"; "y" |]
    ~threads:
      [
        [| C11.load ~mode:C11.rlx ~dst:1 ~loc:0; C11.store ~mode:C11.rlx ~value:1 ~loc:1 |];
        [| C11.load ~mode:C11.rlx ~dst:1 ~loc:1; C11.store ~mode:C11.rlx ~value:1 ~loc:0 |];
      ]
    ~condition:[ ((0, 1), 1); ((1, 1), 1) ]
    ~expected:[] ()

let test_rc11_classics () =
  Alcotest.(check bool) "MP+rel+acq forbidden" false
    (allowed Axiomatic.Rc11 (mp ~mode_w:C11.rel ~mode_r:C11.acq));
  Alcotest.(check bool) "MP all-rlx allowed" true
    (allowed Axiomatic.Rc11 (mp ~mode_w:C11.rlx ~mode_r:C11.rlx));
  Alcotest.(check bool) "SB+sc forbidden" false (allowed Axiomatic.Rc11 (sb ~mode:C11.sc));
  Alcotest.(check bool) "SB rlx allowed" true (allowed Axiomatic.Rc11 (sb ~mode:C11.rlx));
  (* No-thin-air: po U rf acyclicity forbids LB even fully relaxed. *)
  Alcotest.(check bool) "LB rlx forbidden" false (allowed Axiomatic.Rc11 lb_rlx)

let test_library_lift () =
  let lifted = C11.lifted_library () in
  Alcotest.(check int) "1:1 with the hardware library" (List.length Library.all)
    (List.length lifted);
  List.iter
    (fun (t : Test.t) ->
      Alcotest.(check bool) (t.Test.name ^ " suffixed") true
        (Filename.check_suffix t.Test.name "+c11");
      Alcotest.(check bool) (t.Test.name ^ " expected dropped") true
        (t.Test.expected = []))
    lifted

(* Compilation --------------------------------------------------------- *)

let test_compile_offsets () =
  (* Dekker under the leading-sync scheme: the try-lock's forward
     branch must still land exactly on the thread end after sync/
     lwsync insertion, and compiled relaxed loads must carry the
     degenerate cbnz +0 control dependency. *)
  let t = Locks.test_of Locks.dekker in
  let compiled = Compile.compile_test Compile.Power_sync t in
  Array.iteri
    (fun tid thread ->
      let len = Array.length thread in
      Array.iteri
        (fun i instr ->
          match instr with
          | Instr.Cbnz { offset; _ } | Instr.Cbz { offset; _ } ->
              let target = i + 1 + offset in
              Alcotest.(check bool)
                (Printf.sprintf "thread %d pc %d branch in range" tid i)
                true
                (target >= 0 && target <= len)
          | _ -> ())
        thread)
    compiled.Test.program.Program.threads;
  let thread0 = compiled.Test.program.Program.threads.(0) in
  let escapes =
    Array.to_list thread0
    |> List.mapi (fun i instr -> (i, instr))
    |> List.filter_map (function
         | i, Instr.Cbnz { offset; _ } when offset <> 0 -> Some (i + 1 + offset)
         | _ -> None)
  in
  Alcotest.(check (list int)) "try-lock escape branch retargeted to thread end"
    [ Array.length thread0 ] escapes;
  let fake_ctrl =
    Array.to_list thread0
    |> List.filter (function Instr.Cbnz { offset = 0; _ } -> true | _ -> false)
  in
  Alcotest.(check bool) "relaxed load carries cbnz +0" true (fake_ctrl <> [])

let test_compile_no_language_residue () =
  (* Compiled programs must be pure target ISA: no Acq_rel/Sc access
     orders, no language-tier fences. *)
  List.iter
    (fun scheme ->
      let t = Compile.compile_test scheme (C11.lift_test (Option.get (Library.by_name "SB+dmbs"))) in
      Array.iter
        (fun thread ->
          Array.iter
            (fun instr ->
              (match instr with
              | Instr.Load { order; _ }
              | Instr.Store { order; _ }
              | Instr.Load_exclusive { order; _ }
              | Instr.Store_exclusive { order; _ } ->
                  Alcotest.(check bool)
                    (Compile.scheme_name scheme ^ " no language order") false
                    (order = Instr.Acq_rel || order = Instr.Sc)
              | _ -> ());
              match instr with
              | Instr.Barrier b ->
                  Alcotest.(check bool)
                    (Compile.scheme_name scheme ^ " no language fence") false
                    (Instr.is_language_barrier b)
              | _ -> ())
            thread)
        t.Test.program.Program.threads)
    Compile.all_schemes

let test_containment_subset () =
  let engine = Wmm_engine.Engine.create ~jobs:0 () in
  let tests =
    [
      C11.lift_test (Option.get (Library.by_name "SB"));
      C11.lift_test (Option.get (Library.by_name "MP+rel+acq"));
      Locks.test_of Locks.cas_lock;
    ]
  in
  let report = Contain.run ~engine tests in
  Alcotest.(check int) "3 tests x 3 schemes" 9 report.Contain.checks;
  Alcotest.(check int) "nothing skipped" 0 report.Contain.skipped;
  Alcotest.(check int) "no containment violations" 0
    (List.length report.Contain.disagreements)

(* Locks --------------------------------------------------------------- *)

let test_locks_default_safe () =
  List.iter
    (fun (l : Locks.t) ->
      Alcotest.(check bool) (l.Locks.name ^ " defaults forbid the violation") false
        (allowed Axiomatic.Rc11 (Locks.test_of l)))
    Locks.all

let test_dekker_relaxed_unsafe () =
  let weakened =
    Locks.dekker.Locks.build (Array.map (fun _ -> C11.rlx) Locks.dekker.Locks.defaults)
  in
  Alcotest.(check bool) "all-rlx dekker admits the violation" true
    (allowed Axiomatic.Rc11 weakened)

let test_rank_cas_lock () =
  let engine = Wmm_engine.Engine.create ~jobs:0 () in
  let rows =
    Rank.run ~schemes:[ Compile.Arm_native ] ~locks:[ Locks.cas_lock ] ~engine ()
  in
  match rows with
  | [ row ] ->
      Alcotest.(check string) "stable row line"
        "rank|arm-native|cas-lock|2/2|1.000|defaults-safe" (Rank.row_line row);
      (* Containment must persist at weakened orders: any weakening
         that breaks the compiled target also breaks RC11. *)
      List.iter
        (fun (e : Rank.entry) ->
          if e.Rank.hw = Rank.R_broken then
            Alcotest.(check bool) (e.Rank.site ^ " hw-broken implies rc11-broken") true
              (e.Rank.rc11 = Rank.R_broken))
        row.Rank.entries
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows)

(* Language-level CAS -------------------------------------------------- *)

let test_cas_failure_path () =
  let cas_thread ~expected =
    Array.of_list
      (C11.cas ~status:3 ~old:1 ~tmp:2 ~expected ~desired:9 ~loc:0 ~mode_r:C11.acq
         ~mode_w:C11.rel)
  in
  let test ~expected =
    Test.make ~name:"cas-c11" ~description:"single-thread CAS" ~locations:[| "x" |]
      ~threads:[ cas_thread ~expected ] ~condition:[] ~expected:[] ()
  in
  (* Value mismatch: the failure path is the only path — status 1 and
     memory untouched in every RC11-consistent outcome. *)
  let miss = test ~expected:5 in
  List.iter
    (fun (o : Enumerate.outcome) ->
      Alcotest.(check int) "status 1 on mismatch" 1 (List.assoc (0, 3) o.Enumerate.registers);
      Alcotest.(check int) "memory untouched" 0 (List.assoc 0 o.Enumerate.memory))
    (Enumerate.allowed_outcomes Axiomatic.Rc11 miss.Test.program);
  (* Value match: the success outcome must be reachable. *)
  let hit = test ~expected:0 in
  Alcotest.(check bool) "swap reachable on match" true
    (Enumerate.outcome_allowed Axiomatic.Rc11 hit.Test.program
       { Enumerate.registers = [ ((0, 3), 0) ]; memory = [ (0, 9) ] })

(* Golden table -------------------------------------------------------- *)

let golden_schemes = [ Compile.Arm_native; Compile.Power_sync ]

let golden_table () =
  let b = Buffer.create 2048 in
  let verdict model (t : Test.t) =
    let outcome =
      { Enumerate.registers = t.Test.condition; memory = t.Test.mem_condition }
    in
    if Enumerate.outcome_allowed model t.Test.program outcome then "Allow" else "Forbid"
  in
  let row (t : Test.t) =
    let cells =
      verdict Axiomatic.Rc11 t
      :: List.map
           (fun s -> verdict (Contain.hw_model s) (Compile.compile_test s t))
           golden_schemes
    in
    Printf.bprintf b "%-28s %s\n" t.Test.name
      (String.concat " " (List.map (Printf.sprintf "%-6s") cells))
  in
  Printf.bprintf b "# lang golden: condition reachability at the language tier\n";
  Printf.bprintf b "# columns: test  rc11  %s\n"
    (String.concat "  " (List.map Compile.scheme_name golden_schemes));
  Printf.bprintf b "## locks (defaults)\n";
  List.iter (fun l -> row (Locks.test_of l)) Locks.all;
  Printf.bprintf b "## lifted classics\n";
  List.iter
    (fun name ->
      match Library.by_name name with
      | None -> Printf.bprintf b "%-28s missing\n" name
      | Some t -> row (C11.lift_test t))
    [ "SB"; "SB+dmbs"; "MP"; "MP+dmb"; "MP+rel+acq"; "LB"; "LB+datas"; "SB+rel+acq";
      "IRIW"; "IRIW+dmbs"; "WRC"; "2+2W" ];
  Buffer.contents b

let test_golden () =
  let path =
    if Sys.file_exists "data/lang_golden.txt" then "data/lang_golden.txt"
    else "test/data/lang_golden.txt"
  in
  let ic = open_in path in
  let n = in_channel_length ic in
  let expected = really_input_string ic n in
  close_in ic;
  let got = golden_table () in
  if got <> expected then begin
    let gl = String.split_on_char '\n' got
    and el = String.split_on_char '\n' expected in
    let rec first_diff i = function
      | g :: gs, e :: es -> if g = e then first_diff (i + 1) (gs, es) else (i, g, e)
      | g :: _, [] -> (i, g, "<end of golden file>")
      | [], e :: _ -> (i, "<end of generated table>", e)
      | [], [] -> (i, "", "")
    in
    let i, g, e = first_diff 1 (gl, el) in
    Alcotest.failf
      "golden verdict table drifted at line %d:\n  generated: %s\n  golden:    %s\n\
       Regenerate with `dune exec test/gen_lang_golden.exe > test/data/lang_golden.txt` \
       after a deliberate model or compiler change."
      i g e
  end

let suite =
  [
    Alcotest.test_case "rc11 classics" `Quick test_rc11_classics;
    Alcotest.test_case "library lift" `Quick test_library_lift;
    Alcotest.test_case "compile offsets" `Quick test_compile_offsets;
    Alcotest.test_case "compile leaves no language residue" `Quick
      test_compile_no_language_residue;
    Alcotest.test_case "containment subset" `Quick test_containment_subset;
    Alcotest.test_case "locks default-safe" `Quick test_locks_default_safe;
    Alcotest.test_case "dekker all-rlx unsafe" `Quick test_dekker_relaxed_unsafe;
    Alcotest.test_case "rank cas-lock" `Quick test_rank_cas_lock;
    Alcotest.test_case "cas failure path" `Quick test_cas_failure_path;
    Alcotest.test_case "golden verdict table" `Quick test_golden;
  ]
