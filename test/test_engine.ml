(* The execution engine: scheduling determinism, cache behaviour,
   crash isolation, telemetry. *)

let () = Unix.putenv "WMM_FAST" "1"

open Wmm_engine
open Wmm_core
open Wmm_experiments

let arch = Wmm_isa.Arch.Armv8

(* A deliberately tiny benchmark so each engine test runs in
   milliseconds. *)
let profile =
  { Wmm_workload.Dacapo.spark with Wmm_workload.Profile.threads = 2; units_per_thread = 30 }

let small_sweep engine =
  let batch = Experiment.batch () in
  let finish =
    Experiment.sweep_deferred batch ~samples:2 ~light:true ~iteration_counts:[ 4; 32 ]
      ~code_path:"engine test" ~base:(Exp_common.jvm_nop_base arch)
      ~inject:(fun cf ->
        Exp_common.jvm_platform ~inject_all:[ Wmm_costfn.Cost_function.uop cf ] arch)
      profile
  in
  Experiment.run_batch engine batch;
  finish ()

let test_sequential_vs_parallel () =
  let seq = small_sweep (Engine.create ~jobs:1 ()) in
  let par = small_sweep (Engine.create ~jobs:4 ()) in
  Alcotest.(check bool) "jobs=4 sweep structurally equal to jobs=1" true (seq = par);
  (* The deferred path must also agree with the original direct
     implementation it replaces. *)
  let direct =
    Experiment.sweep ~samples:2 ~light:true ~iteration_counts:[ 4; 32 ]
      ~code_path:"engine test" ~base:(Exp_common.jvm_nop_base arch)
      ~inject:(fun cf ->
        Exp_common.jvm_platform ~inject_all:[ Wmm_costfn.Cost_function.uop cf ] arch)
      profile
  in
  Alcotest.(check bool) "deferred sweep equals direct sweep" true (seq = direct)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_temp_cache f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wmm_engine_test_%d_%.0f" (Unix.getpid ()) (Unix.gettimeofday () *. 1e6))
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let test_cache_hit_on_second_run () =
  with_temp_cache (fun dir ->
      let first_engine = Engine.create ~jobs:1 ~cache:(Cache.create ~dir ()) () in
      let first = small_sweep first_engine in
      let s1 = Engine.summary first_engine in
      Alcotest.(check int) "first run computes everything" 0 s1.Telemetry.cached;
      Alcotest.(check bool) "first run stores results" true
        ((Cache.stats (Engine.cache first_engine)).Cache.stores > 0);
      let second_engine = Engine.create ~jobs:2 ~cache:(Cache.create ~dir ()) () in
      let second = small_sweep second_engine in
      let s2 = Engine.summary second_engine in
      Alcotest.(check int) "second run fully cached" s2.Telemetry.total
        s2.Telemetry.cached;
      Alcotest.(check int) "second run computes nothing" 0 s2.Telemetry.ran;
      Alcotest.(check bool) "cached result identical" true (first = second))

let test_failed_task_isolation () =
  let engine = Engine.create ~jobs:2 () in
  let tasks =
    [|
      Task.pure ~key:"ok-1" (fun () -> 1);
      Task.pure ~key:"boom" (fun () -> failwith "boom");
      Task.pure ~key:"ok-3" (fun () -> 3);
    |]
  in
  let results = Engine.run_all engine tasks in
  (match results.(0) with
  | Engine.Computed 1 -> ()
  | _ -> Alcotest.fail "task 0 should compute 1");
  (match results.(1) with
  | Engine.Failed msg ->
      Alcotest.(check bool) "failure message recorded" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "task 1 should fail");
  (match results.(2) with
  | Engine.Computed 3 -> ()
  | _ -> Alcotest.fail "task 2 should compute 3");
  let s = Engine.summary engine in
  Alcotest.(check int) "one failure in telemetry" 1 s.Telemetry.failed;
  Alcotest.(check int) "two tasks ran" 2 s.Telemetry.ran

let test_batch_dedupes_equal_keys () =
  let engine = Engine.create ~jobs:2 () in
  let batch = Engine.Batch.create () in
  let get_a = Engine.Batch.add batch (Task.pure ~key:"shared" (fun () -> 7)) in
  let get_b = Engine.Batch.add batch (Task.pure ~key:"shared" (fun () -> 7)) in
  Engine.Batch.run engine batch;
  Alcotest.(check int) "deduplicated to one task" 1 (Engine.summary engine).Telemetry.total;
  Alcotest.(check int) "both getters see the value" 14
    (Engine.get (get_a ()) + Engine.get (get_b ()))

let test_task_rng_deterministic () =
  let a = Task.rng_for ~root_seed:5 "some/task/key" in
  let b = Task.rng_for ~root_seed:5 "some/task/key" in
  let c = Task.rng_for ~root_seed:5 "other/key" in
  Alcotest.(check int64) "same key, same stream" (Wmm_util.Rng.int64 a)
    (Wmm_util.Rng.int64 b);
  Alcotest.(check bool) "different keys decorrelated" true
    (List.init 8 (fun _ -> Wmm_util.Rng.int64 a)
    <> List.init 8 (fun _ -> Wmm_util.Rng.int64 c))

let test_telemetry_json () =
  Alcotest.(check int) "telemetry schema version" 6 Telemetry.schema_version;
  let engine = Engine.create ~jobs:1 () in
  ignore (Engine.run_all engine [| Task.pure ~key:"t" (fun () -> ()) |]);
  Engine.set_exploration engine
    {
      Telemetry.explored = 42;
      pruned = 7;
      well_formed = 42;
      consistent = 17;
      graph_executions = 9;
      revisits = 3;
      symmetry_skips = 2;
      cutover_small = 1;
      explore_wall_s = 0.5;
    };
  let path = Filename.temp_file "wmm_telemetry" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Engine.write_telemetry engine path;
      let ic = open_in path in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      List.iter
        (fun needle ->
          let found =
            let n = String.length needle and h = String.length body in
            let rec go i = i + n <= h && (String.sub body i n = needle || go (i + 1)) in
            go 0
          in
          if not found then Alcotest.failf "telemetry JSON missing %S" needle)
        [
          Printf.sprintf "\"schema_version\": %d" Telemetry.schema_version;
          "\"tasks_total\": 1";
          "\"tasks_ran\": 1";
          "\"cache\"";
          "\"outcome\": \"ran\"";
          "\"exploration\": {\"explored\": 42, \"pruned\": 7, \"well_formed\": 42, \
           \"consistent\": 17, \"graph_executions\": 9, \"revisits\": 3, \
           \"symmetry_skips\": 2, \"cutover_small\": 1,";
        ])

(* ------------------------------------------------------------------ *)
(* Resilience: fault injection, retry recovery, checkpoint/resume,
   cache corruption, robust fitting.                                   *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let check_contains what hay needle =
  if not (contains hay needle) then Alcotest.failf "%s missing %S" what needle

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wmm_resilience_%d_%.0f" (Unix.getpid ())
         (Unix.gettimeofday () *. 1e6))
  in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

let plan spec =
  match Fault.parse spec with
  | Ok p -> p
  | Error m -> Alcotest.failf "fault plan %S rejected: %s" spec m

let test_fault_plan_parse () =
  let p = plan "seed=7,transient=0.3x2,outlier=0.05x10,corrupt=0.1" in
  (match Fault.parse (Fault.to_string p) with
  | Ok p' -> Alcotest.(check string) "round trip" (Fault.to_string p) (Fault.to_string p')
  | Error m -> Alcotest.failf "canonical spec rejected: %s" m);
  Alcotest.(check bool) "none is none" true (Fault.is_none Fault.none);
  Alcotest.(check string) "none fingerprint empty" "" (Fault.fingerprint Fault.none);
  (match Fault.parse "transient=1.5" with
  | Ok _ -> Alcotest.fail "probability > 1 accepted"
  | Error _ -> ());
  (match Fault.parse "bogus=1" with
  | Ok _ -> Alcotest.fail "unknown fault kind accepted"
  | Error _ -> ());
  (* Decisions are pure functions of (plan, key, index). *)
  let always = plan "transient=1x1" in
  Alcotest.(check bool) "p=1 fails the first attempt" true
    (Fault.should_fail always ~key:"k" ~attempt:0);
  Alcotest.(check bool) "p=1 recovers after K attempts" false
    (Fault.should_fail always ~key:"k" ~attempt:1);
  Alcotest.(check bool) "none never fails" false
    (Fault.should_fail Fault.none ~key:"k" ~attempt:0);
  Alcotest.(check bool) "decision deterministic"
    (Fault.should_fail p ~key:"some/task" ~attempt:0)
    (Fault.should_fail p ~key:"some/task" ~attempt:0);
  let samples = [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check bool) "no outlier plan leaves samples alone" true
    (Fault.perturb_samples always ~key:"k" samples == samples);
  Alcotest.(check bool) "perturbation deterministic" true
    (Fault.perturb_samples p ~key:"k" samples = Fault.perturb_samples p ~key:"k" samples)

let test_retry_recovers_bit_identical () =
  let clean = small_sweep (Engine.create ~jobs:1 ()) in
  let p = plan "seed=3,transient=1x2" in
  (* Every task fails its first two attempts; a retry budget of 2
     (three attempts) recovers the whole sweep, and because sample
     tasks are pure functions of their request the recovered sweep is
     bit-identical to the fault-free one. *)
  let recovered =
    Fault.with_ambient p (fun () ->
        let engine = Engine.create ~jobs:2 ~retries:2 ~backoff_s:0. () in
        let sweep = small_sweep engine in
        let s = Engine.summary engine in
        Alcotest.(check int) "no permanent failures" 0 s.Telemetry.failed;
        Alcotest.(check int) "every task needed retries" s.Telemetry.total
          s.Telemetry.retried;
        sweep)
  in
  Alcotest.(check bool) "recovered sweep bit-identical to clean run" true
    (clean = recovered)

let test_retry_budget_exhaustion_degrades () =
  (* Three injected failures against a budget of two retries: every
     task settles as Failed, and the sweep degrades (dropped points,
     unavailable fit) instead of aborting. *)
  let p = plan "seed=3,transient=1x3" in
  Fault.with_ambient p (fun () ->
      let engine = Engine.create ~jobs:2 ~retries:1 ~backoff_s:0. () in
      let sweep = small_sweep engine in
      let s = Engine.summary engine in
      Alcotest.(check int) "all tasks failed" s.Telemetry.total s.Telemetry.failed;
      Alcotest.(check int) "no surviving points" 0 (List.length sweep.Experiment.points);
      Alcotest.(check int) "dropped points reported" 2 sweep.Experiment.dropped;
      Alcotest.(check bool) "fit reported unavailable" false
        (Sensitivity.available sweep.Experiment.fit))

let test_deadline_overrun_not_stored () =
  with_temp_dir (fun dir ->
      let journal_dir = Filename.concat dir "journal" in
      let cache = Cache.create ~dir () in
      let journal = Journal.open_ ~dir:journal_dir ~run_id:"deadline" () in
      let engine = Engine.create ~jobs:1 ~cache ~soft_deadline_s:0. ~journal () in
      let task =
        Task.pure ~key:"sleepy" (fun () ->
            Unix.sleepf 0.01;
            42)
      in
      (match Engine.run engine task with
      | Engine.Failed msg ->
          Alcotest.(check bool) "overrun message recorded" true (String.length msg > 0)
      | _ -> Alcotest.fail "overrun task should be Failed");
      (* The overrun result must be discarded, not persisted: neither
         cache-stored nor journaled for replay. *)
      Alcotest.(check int) "nothing stored in cache" 0 (Cache.stats cache).Cache.stores;
      Alcotest.(check (option int)) "cache lookup misses" None
        (Cache.find cache ~key:"sleepy");
      let reopened = Journal.open_ ~dir:journal_dir ~run_id:"deadline" () in
      Alcotest.(check int) "nothing replayable in journal" 0 (Journal.loaded reopened))

let test_journal_resume_recomputes_only_missing () =
  with_temp_dir (fun dir ->
      let t n = Task.pure ~key:("jr-" ^ n) (fun () -> String.length n) in
      (* First (interrupted) run completes two of four tasks. *)
      let j1 = Journal.open_ ~dir ~run_id:"resume test/01" () in
      let e1 = Engine.create ~jobs:1 ~journal:j1 () in
      ignore (Engine.run_all e1 [| t "a"; t "bb" |]);
      (* The rerun replays those and computes only the remainder. *)
      let j2 = Journal.open_ ~dir ~run_id:"resume test/01" () in
      Alcotest.(check int) "two completed tasks on file" 2 (Journal.loaded j2);
      Alcotest.(check string) "run id survives sanitisation" (Journal.run_id j1)
        (Journal.run_id j2);
      let e2 = Engine.create ~jobs:2 ~journal:j2 () in
      let results = Engine.run_all e2 [| t "a"; t "bb"; t "ccc"; t "dddd" |] in
      (match (results.(0), results.(1)) with
      | Engine.Replayed 1, Engine.Replayed 2 -> ()
      | _ -> Alcotest.fail "journaled tasks should be replayed");
      (match (results.(2), results.(3)) with
      | Engine.Computed 3, Engine.Computed 4 -> ()
      | _ -> Alcotest.fail "unjournaled tasks should be computed");
      let s = Engine.summary e2 in
      Alcotest.(check int) "two tasks replayed" 2 s.Telemetry.replayed;
      Alcotest.(check int) "only the missing two ran" 2 s.Telemetry.ran)

let test_journal_skips_failed_and_torn_entries () =
  with_temp_dir (fun dir ->
      let j = Journal.open_ ~dir ~run_id:"torn" () in
      Journal.record_ok j ~key:"good" 7;
      Journal.record_failed j ~key:"bad" ~msg:"flaky crash";
      (* A foreign writer (or a pre-rename crash of an older format)
         leaves a torn line behind; load must skip it. *)
      let oc = open_out_gen [ Open_append ] 0o644 (Journal.path j) in
      output_string oc "{\"key\": \"torn";
      close_out oc;
      let reopened = Journal.open_ ~dir ~run_id:"torn" () in
      Alcotest.(check int) "only the ok entry is replayable" 1 (Journal.loaded reopened);
      Alcotest.(check (option int)) "ok entry replays" (Some 7)
        (Journal.replay reopened ~key:"good");
      Alcotest.(check (option int)) "failed entry never replays" None
        (Journal.replay reopened ~key:"bad"))

let test_journal_append_two_concurrent_writers () =
  with_temp_dir (fun dir ->
      (* Two long-lived writers (the served daemon's shape: one
         Append-mode handle per incarnation, O_APPEND fd, one write
         per record) interleave appends into the same run's journal.
         Every record must survive whole - no interleaved or torn
         lines. *)
      let n = 100 in
      let writer tag =
        let j = Journal.open_ ~dir ~mode:Journal.Append ~run_id:"two writers" () in
        for i = 0 to n - 1 do
          Journal.record_ok j ~key:(Printf.sprintf "%s-%d" tag i) (i * 2);
          if i mod 7 = 0 then Thread.yield ()
        done;
        Journal.close j
      in
      let ta = Thread.create writer "a" and tb = Thread.create writer "b" in
      Thread.join ta;
      Thread.join tb;
      let reopened = Journal.open_ ~dir ~run_id:"two writers" () in
      Alcotest.(check int) "every record from both writers replayable" (2 * n)
        (Journal.loaded reopened);
      Alcotest.(check int) "no torn or interleaved lines" 0 (Journal.dropped reopened);
      Alcotest.(check (option int)) "writer a's payloads intact" (Some 66)
        (Journal.replay reopened ~key:"a-33");
      Alcotest.(check (option int)) "writer b's payloads intact" (Some 198)
        (Journal.replay reopened ~key:(Printf.sprintf "b-%d" (n - 1)));
      (* fsck agrees: nothing torn, nothing to compact. *)
      let r = Journal.fsck ~dir ~run_id:"two writers" () in
      Alcotest.(check int) "fsck sees every line" (2 * n) r.Journal.j_lines;
      Alcotest.(check int) "fsck finds no torn lines" 0 r.Journal.j_torn;
      Alcotest.(check bool) "fsck compacts nothing" false r.Journal.j_compacted)

let test_journal_fsck_compacts_damage () =
  with_temp_dir (fun dir ->
      let j = Journal.open_ ~dir ~mode:Journal.Append ~run_id:"fsck" () in
      Journal.record_ok j ~key:"dup" 1;
      Journal.record_failed j ~key:"orphan" ~msg:"transient crash";
      Journal.record_ok j ~key:"dup" 2;
      (* duplicate: the rerun recomputed *)
      Journal.record_ok j ~key:"orphan" 3;
      (* supersedes the failure *)
      Journal.record_failed j ~key:"dead" ~msg:"permanent";
      Journal.close j;
      (* A crash mid-append tears the final line. *)
      let oc = open_out_gen [ Open_append ] 0o644 (Journal.path j) in
      output_string oc {|{"key": "torn|};
      close_out oc;
      let r = Journal.fsck ~dir ~run_id:"fsck" () in
      Alcotest.(check int) "all physical lines scanned" 6 r.Journal.j_lines;
      Alcotest.(check int) "ok records counted" 3 r.Journal.j_ok;
      Alcotest.(check int) "failed records counted" 2 r.Journal.j_failed;
      Alcotest.(check int) "torn line found" 1 r.Journal.j_torn;
      Alcotest.(check int) "duplicate found" 1 r.Journal.j_duplicates;
      Alcotest.(check int) "orphaned failure found" 1 r.Journal.j_orphans;
      Alcotest.(check int) "compacted to last-ok per key + live failures" 3
        r.Journal.j_kept;
      Alcotest.(check bool) "file rewritten" true r.Journal.j_compacted;
      (* The compacted journal loads clean and keeps the right records. *)
      let reopened = Journal.open_ ~dir ~run_id:"fsck" () in
      Alcotest.(check int) "two replayable entries" 2 (Journal.loaded reopened);
      Alcotest.(check int) "nothing dropped after compaction" 0
        (Journal.dropped reopened);
      Alcotest.(check (option int)) "duplicate resolved to the last record" (Some 2)
        (Journal.replay reopened ~key:"dup");
      Alcotest.(check (option int)) "superseding ok replays" (Some 3)
        (Journal.replay reopened ~key:"orphan");
      Alcotest.(check (option int)) "failure still never replays" None
        (Journal.replay reopened ~key:"dead");
      (* Idempotent: a second pass finds a clean file. *)
      let r2 = Journal.fsck ~dir ~run_id:"fsck" () in
      Alcotest.(check bool) "second fsck compacts nothing" false
        r2.Journal.j_compacted;
      Alcotest.(check int) "second fsck keeps the same lines" 3 r2.Journal.j_lines)

let count_corrupt_files dir =
  let rec go d =
    Array.to_list (Sys.readdir d)
    |> List.fold_left
         (fun acc f ->
           let p = Filename.concat d f in
           if Sys.is_directory p then acc + go p
           else if Filename.check_suffix f ".corrupt" then acc + 1
           else acc)
         0
  in
  go dir

let test_cache_verify_quarantine () =
  with_temp_dir (fun dir ->
      let cache = Cache.create ~dir () in
      Cache.store cache ~key:"fragile" 1234;
      Alcotest.(check (option int)) "clean entry hits" (Some 1234)
        (Cache.find cache ~key:"fragile");
      Alcotest.(check bool) "fault injection garbles the entry" true
        (Cache.corrupt cache ~key:"fragile");
      (* The damaged read is a miss, counted, and the evidence kept. *)
      Alcotest.(check (option int)) "corrupt entry misses" None
        (Cache.find cache ~key:"fragile");
      let s = Cache.stats cache in
      Alcotest.(check int) "verify failure counted" 1 s.Cache.verify_failures;
      Alcotest.(check bool) "also counted as a cache error" true (s.Cache.errors >= 1);
      Alcotest.(check int) "damaged file quarantined as .corrupt" 1
        (count_corrupt_files dir);
      (* A re-store repopulates cleanly without touching the evidence. *)
      Cache.store cache ~key:"fragile" 1234;
      Alcotest.(check (option int)) "re-store repopulates" (Some 1234)
        (Cache.find cache ~key:"fragile");
      Alcotest.(check int) "quarantined evidence survives the re-store" 1
        (count_corrupt_files dir);
      (* fsck walks the repopulated cache and finds it clean. *)
      let r = Cache.fsck cache in
      Alcotest.(check int) "fsck verifies the clean entry" 1 r.Cache.f_ok;
      Alcotest.(check int) "fsck quarantines nothing further" 0 r.Cache.f_quarantined;
      Alcotest.(check bool) "corrupting a missing key reports false" false
        (Cache.corrupt cache ~key:"never-stored"))

let test_soft_deadline_cancels_mid_task () =
  (* A task that never returns on its own but polls the ambient
     cancellation token the way the explorer's backtracking loop does:
     the engine's soft deadline must stop it cooperatively, within
     milliseconds of the deadline rather than at task completion. *)
  let engine = Engine.create ~jobs:1 ~soft_deadline_s:0.05 () in
  let t0 = Unix.gettimeofday () in
  let polls = ref 0 in
  (match
     Engine.run engine
       (Task.pure ~key:"cooperative-spin" (fun () ->
            while Unix.gettimeofday () -. t0 < 10. do
              incr polls;
              Wmm_util.Cancel.check_ambient ()
            done;
            Alcotest.fail "cancellation never fired"))
   with
  | Engine.Failed msg ->
      Alcotest.(check bool) "failure carries a reason" true (String.length msg > 0)
  | _ -> Alcotest.fail "deadline-doomed task should settle as Failed");
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "died mid-task, not at the 10s escape hatch" true
    (elapsed < 5.);
  Alcotest.(check bool) "the loop actually polled" true (!polls > 0);
  Alcotest.(check int) "cancelled task counted as failed" 1
    (Engine.summary engine).Telemetry.failed

let test_corrupted_cache_entry_recomputed () =
  with_temp_dir (fun dir ->
      let p = plan "seed=1,corrupt=1" in
      let c1 = Cache.create ~dir () in
      let e1 = Engine.create ~jobs:1 ~cache:c1 ~faults:p () in
      (match Engine.run e1 (Task.pure ~key:"poisoned" (fun () -> 13)) with
      | Engine.Computed 13 -> ()
      | _ -> Alcotest.fail "first run computes the value");
      Alcotest.(check int) "entry was stored (then garbled)" 1
        (Cache.stats c1).Cache.stores;
      (* A fresh engine over the same cache directory must detect the
         corruption and recompute rather than replay garbage. *)
      let c2 = Cache.create ~dir () in
      let e2 = Engine.create ~jobs:1 ~cache:c2 () in
      (match Engine.run e2 (Task.pure ~key:"poisoned" (fun () -> 13)) with
      | Engine.Computed 13 -> ()
      | _ -> Alcotest.fail "corrupt entry must recompute, not hit");
      Alcotest.(check bool) "corruption counted as cache error" true
        ((Cache.stats c2).Cache.errors >= 1);
      Alcotest.(check int) "recompute actually ran" 1 (Engine.summary e2).Telemetry.ran)

let test_cache_prune_and_clear () =
  with_temp_dir (fun dir ->
      let cache = Cache.create ~dir () in
      let engine = Engine.create ~jobs:1 ~cache () in
      ignore
        (Engine.run_all engine
           (Array.init 4 (fun i ->
                Task.pure ~key:(Printf.sprintf "prune-%d" i) (fun () ->
                    String.make 64 'x'))));
      (match Cache.disk_usage cache with
      | Some (count, bytes) ->
          Alcotest.(check int) "four entries on disk" 4 count;
          Alcotest.(check bool) "entries have size" true (bytes > 0)
      | None -> Alcotest.fail "disk usage unavailable for a real cache");
      (* Prune to zero budget deletes everything, oldest first. *)
      let removed = Cache.prune cache ~max_bytes:0 in
      Alcotest.(check int) "prune removes all entries" 4 removed;
      Alcotest.(check int) "prunes counted in stats" 4 (Cache.stats cache).Cache.pruned;
      (match Cache.disk_usage cache with
      | Some (count, _) -> Alcotest.(check int) "directory emptied" 0 count
      | None -> Alcotest.fail "disk usage unavailable after prune");
      ignore (Engine.run engine (Task.pure ~key:"again" (fun () -> 1)));
      Alcotest.(check int) "clear removes remaining entries" 1 (Cache.clear cache))

let test_pool_aggregates_failures () =
  (* A single failing task re-raises the original exception... *)
  (match Pool.run ~jobs:2 4 (fun i -> if i = 2 then failwith "only me") with
  | () -> Alcotest.fail "single failure should raise"
  | exception Failure m -> Alcotest.(check string) "original exception" "only me" m);
  (* ...while several are aggregated so none is silently swallowed. *)
  match Pool.run ~jobs:2 4 (fun i -> failwith (Printf.sprintf "task %d" i)) with
  | () -> Alcotest.fail "multiple failures should raise"
  | exception Pool.Multiple_failures msg ->
      check_contains "aggregate message" msg "4 tasks failed";
      check_contains "aggregate message" msg "task "

(* ------------------------------------------------------------------ *)
(* The persistent work queue and its sharing machinery (the served
   daemon's substrate): resubmittable pool, in-flight deduplication,
   sharded cache layout.                                               *)
(* ------------------------------------------------------------------ *)

let test_workqueue_submit_await () =
  let wq = Workqueue.create ~jobs:3 () in
  Alcotest.(check int) "worker count" 3 (Workqueue.jobs wq);
  let hs = List.init 20 (fun i -> Workqueue.submit wq (fun () -> i * i)) in
  let sum = List.fold_left (fun acc h -> acc + Workqueue.await h) 0 hs in
  Alcotest.(check int) "first wave completes" 2470 sum;
  (* The queue is persistent: a later wave reuses the warm workers. *)
  let h = Workqueue.submit wq (fun () -> 41 + 1) in
  Alcotest.(check int) "second wave on the same workers" 42 (Workqueue.await h);
  Alcotest.(check int) "submissions counted" 21 (Workqueue.submitted wq);
  (match Workqueue.await (Workqueue.submit wq (fun () -> failwith "wq boom")) with
  | _ -> Alcotest.fail "job exception should propagate to await"
  | exception Failure m -> Alcotest.(check string) "original exception" "wq boom" m);
  Workqueue.shutdown wq;
  Workqueue.shutdown wq;
  (* idempotent *)
  match Workqueue.submit wq (fun () -> 0) with
  | _ -> Alcotest.fail "submit after shutdown should raise"
  | exception Invalid_argument _ -> ()

let test_shared_pool_bit_identical () =
  (* The daemon's execution shape: several submitters race batches
     into one warm pool.  Every one of them must get results
     bit-identical to a sequential one-shot engine. *)
  let seq = small_sweep (Engine.create ~jobs:1 ()) in
  let wq = Workqueue.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> Workqueue.shutdown wq)
    (fun () ->
      let results = Array.make 3 None in
      let threads =
        Array.init 3 (fun i ->
            Thread.create
              (fun () ->
                let engine = Engine.create ~pool:wq () in
                Alcotest.(check int) "engine takes jobs from the pool" 4
                  (Engine.jobs engine);
                results.(i) <- Some (small_sweep engine))
              ())
      in
      Array.iter Thread.join threads;
      Array.iteri
        (fun i r ->
          match r with
          | Some sweep ->
              Alcotest.(check bool)
                (Printf.sprintf "submitter %d bit-identical to sequential" i)
                true (sweep = seq)
          | None -> Alcotest.failf "submitter %d produced no sweep" i)
        results)

let test_inflight_dedup_computes_once () =
  let inflight : int Inflight.t = Inflight.create () in
  let n = 8 in
  let computed = Atomic.make 0 in
  let results = Array.make n (0, false) in
  let threads =
    Array.init n (fun i ->
        Thread.create
          (fun () ->
            results.(i) <-
              Inflight.run inflight ~key:"shared" (fun () ->
                  (* The owner holds the computation open until every
                     other submitter has joined, making the overlap -
                     and thus the dedup - deterministic. *)
                  while (Inflight.stats inflight).Inflight.joined < n - 1 do
                    Thread.yield ()
                  done;
                  Atomic.incr computed;
                  42))
          ())
  in
  Array.iter Thread.join threads;
  Alcotest.(check int) "computed exactly once" 1 (Atomic.get computed);
  Array.iter (fun (v, _) -> Alcotest.(check int) "every caller sees the value" 42 v) results;
  let joiners = Array.fold_left (fun acc (_, j) -> acc + if j then 1 else 0) 0 results in
  Alcotest.(check int) "everyone else joined" (n - 1) joiners;
  let s = Inflight.stats inflight in
  Alcotest.(check int) "stats count one computation" 1 s.Inflight.computed;
  Alcotest.(check int) "stats count the joiners" (n - 1) s.Inflight.joined;
  Alcotest.(check int) "nothing left active" 0 s.Inflight.active;
  (* A failed owner propagates to everyone but does not poison the
     key: the next run recomputes. *)
  (match Inflight.run inflight ~key:"boom" (fun () -> failwith "inflight boom") with
  | _ -> Alcotest.fail "owner failure should raise"
  | exception Failure m -> Alcotest.(check string) "owner re-raises" "inflight boom" m);
  let v, joined = Inflight.run inflight ~key:"boom" (fun () -> 5) in
  Alcotest.(check bool) "failed key retriable" true (v = 5 && not joined)

let test_cache_sharded_layout_and_legacy () =
  with_temp_dir (fun dir ->
      let cache = Cache.create ~dir () in
      Cache.store cache ~key:"shard-me" 99;
      let shard_dirs () =
        List.filter
          (fun f -> String.length f = 2 && Sys.is_directory (Filename.concat dir f))
          (Array.to_list (Sys.readdir dir))
      in
      Alcotest.(check int) "entry lands in a shard subdirectory" 1
        (List.length (shard_dirs ()));
      Alcotest.(check (option int)) "sharded entry readable" (Some 99)
        (Cache.find cache ~key:"shard-me");
      (* No tmp droppings: publication is tmp + atomic rename. *)
      let rec tmp_files d =
        Array.to_list (Sys.readdir d)
        |> List.concat_map (fun f ->
               let p = Filename.concat d f in
               if Sys.is_directory p then tmp_files p
               else if contains f ".tmp" then [ p ]
               else [])
      in
      Alcotest.(check (list string)) "no tmp files left behind" [] (tmp_files dir);
      (* A flat pre-sharding entry is still served: move the file to
         where the old layout kept it and read through a fresh cache. *)
      let shard = Filename.concat dir (List.hd (shard_dirs ())) in
      let file = (Sys.readdir shard).(0) in
      Sys.rename (Filename.concat shard file) (Filename.concat dir file);
      let fresh = Cache.create ~dir () in
      Alcotest.(check (option int)) "legacy flat entry found" (Some 99)
        (Cache.find fresh ~key:"shard-me");
      match Cache.disk_usage fresh with
      | Some (count, _) -> Alcotest.(check int) "accounting spans both layouts" 1 count
      | None -> Alcotest.fail "disk usage unavailable")

let fig5_style_sweep ?robust engine =
  let batch = Experiment.batch () in
  let finish =
    Experiment.sweep_deferred batch ~samples:8 ~light:true
      ~iteration_counts:[ 4; 16; 64; 256 ] ?robust ~code_path:"robust acceptance"
      ~base:(Exp_common.jvm_nop_base arch)
      ~inject:(fun cf ->
        Exp_common.jvm_platform ~inject_all:[ Wmm_costfn.Cost_function.uop cf ] arch)
      profile
  in
  Experiment.run_batch engine batch;
  finish ()

let test_robust_fit_survives_outliers () =
  let clean = fig5_style_sweep (Engine.create ~jobs:1 ()) in
  let k_clean = clean.Experiment.fit.Sensitivity.k in
  let p = plan "seed=2,outlier=0.05x10" in
  let plain_faulty =
    Fault.with_ambient p (fun () -> fig5_style_sweep (Engine.create ~jobs:1 ()))
  in
  let robust_faulty =
    Fault.with_ambient p (fun () ->
        fig5_style_sweep ~robust:true (Engine.create ~jobs:1 ()))
  in
  let rel x = abs_float (x -. k_clean) /. abs_float k_clean in
  let k_plain = plain_faulty.Experiment.fit.Sensitivity.k in
  let k_robust = robust_faulty.Experiment.fit.Sensitivity.k in
  if Sys.getenv_opt "WMM_PROBE" <> None then
    Printf.eprintf "[probe] k_clean=%g k_plain=%g (%.4f) k_robust=%g (%.4f)\n%!"
      k_clean k_plain (rel k_plain) k_robust (rel k_robust);
  Alcotest.(check bool) "plain fit degrades measurably (> 2% off)" true
    (rel k_plain > 0.02);
  Alcotest.(check bool) "robust fit stays within 2% of the clean estimate" true
    (rel k_robust < 0.02)

let test_telemetry_json_resilience () =
  with_temp_dir (fun dir ->
      let p = plan "seed=3,transient=1x1" in
      let j1 = Journal.open_ ~dir ~run_id:"telemetry" () in
      let e1 = Engine.create ~jobs:1 ~retries:2 ~backoff_s:0. ~faults:p ~journal:j1 () in
      ignore (Engine.run e1 (Task.pure ~key:"flaky" (fun () -> 9)));
      let path = Filename.concat dir "telemetry.json" in
      Engine.write_telemetry e1 path;
      let body = read_file path in
      List.iter
        (check_contains "retried-run telemetry" body)
        [
          "\"tasks_retried\": 1"; "\"attempts\": 2"; "\"outcome\": \"ran\"";
          "\"wall_s\""; "\"max_queue_depth\"";
        ];
      (* A resumed run reports the replay in the same schema. *)
      let j2 = Journal.open_ ~dir ~run_id:"telemetry" () in
      let e2 = Engine.create ~jobs:1 ~journal:j2 () in
      ignore (Engine.run e2 (Task.pure ~key:"flaky" (fun () -> 9)));
      Engine.write_telemetry e2 path;
      let body = read_file path in
      List.iter
        (check_contains "replayed-run telemetry" body)
        [ "\"tasks_replayed\": 1"; "\"outcome\": \"replayed\""; "\"attempts\": 0" ])

(* The load-bearing determinism property: however the scheduler
   interleaves tasks (any worker count, any submission order), the
   fitted k of a sweep is bit-identical to the sequential result. *)
let prop_scheduling_never_changes_k =
  let reference = lazy (small_sweep (Engine.create ~jobs:1 ())) in
  QCheck.Test.make ~name:"scheduling order never changes fitted k" ~count:6
    QCheck.(pair (int_range 1 4) (int_range 0 5))
    (fun (jobs, noise_tasks) ->
      (* Vary the two scheduling knobs - worker count and what else
         competes for the queue - while the sweep's own submission
         stays fixed.  The fitted k and every point must be
         bit-identical to the sequential reference. *)
      let engine = Engine.create ~jobs () in
      let batch = Experiment.batch () in
      let noise_before =
        List.init noise_tasks (fun i ->
            Engine.Batch.add batch
              (Task.make ~key:(Printf.sprintf "noise-%d" i) (fun rng ->
                   Wmm_util.Stats.summarise
                     (Array.init 4 (fun _ -> 1. +. Wmm_util.Rng.unit_float rng)))))
      in
      let finish =
        Experiment.sweep_deferred batch ~samples:2 ~light:true
          ~iteration_counts:[ 4; 32 ] ~code_path:"engine test"
          ~base:(Exp_common.jvm_nop_base arch)
          ~inject:(fun cf ->
            Exp_common.jvm_platform ~inject_all:[ Wmm_costfn.Cost_function.uop cf ]
              arch)
          profile
      in
      Experiment.run_batch engine batch;
      List.iter (fun get -> ignore (Engine.get (get ()))) noise_before;
      let sweep = finish () in
      let reference = Lazy.force reference in
      sweep.Experiment.fit.Sensitivity.k = reference.Experiment.fit.Sensitivity.k
      && sweep.Experiment.points = reference.Experiment.points)

let suite =
  [
    Alcotest.test_case "sequential vs parallel equality" `Quick
      test_sequential_vs_parallel;
    Alcotest.test_case "cache hit on second run" `Quick test_cache_hit_on_second_run;
    Alcotest.test_case "failed-task isolation" `Quick test_failed_task_isolation;
    Alcotest.test_case "batch dedupes equal keys" `Quick test_batch_dedupes_equal_keys;
    Alcotest.test_case "task rng determinism" `Quick test_task_rng_deterministic;
    Alcotest.test_case "telemetry json" `Quick test_telemetry_json;
    Alcotest.test_case "fault plan parsing" `Quick test_fault_plan_parse;
    Alcotest.test_case "retry recovers bit-identical" `Quick
      test_retry_recovers_bit_identical;
    Alcotest.test_case "retry budget exhaustion degrades" `Quick
      test_retry_budget_exhaustion_degrades;
    Alcotest.test_case "deadline overrun not persisted" `Quick
      test_deadline_overrun_not_stored;
    Alcotest.test_case "journal resume recomputes only missing" `Quick
      test_journal_resume_recomputes_only_missing;
    Alcotest.test_case "journal skips failed and torn entries" `Quick
      test_journal_skips_failed_and_torn_entries;
    Alcotest.test_case "journal append: two concurrent writers" `Quick
      test_journal_append_two_concurrent_writers;
    Alcotest.test_case "journal fsck compacts damage" `Quick
      test_journal_fsck_compacts_damage;
    Alcotest.test_case "cache verify quarantines and repopulates" `Quick
      test_cache_verify_quarantine;
    Alcotest.test_case "soft deadline cancels mid-task" `Quick
      test_soft_deadline_cancels_mid_task;
    Alcotest.test_case "corrupted cache entry recomputed" `Quick
      test_corrupted_cache_entry_recomputed;
    Alcotest.test_case "cache prune and clear" `Quick test_cache_prune_and_clear;
    Alcotest.test_case "pool aggregates failures" `Quick test_pool_aggregates_failures;
    Alcotest.test_case "workqueue submit and await" `Quick test_workqueue_submit_await;
    Alcotest.test_case "shared warm pool bit-identical" `Quick
      test_shared_pool_bit_identical;
    Alcotest.test_case "inflight dedup computes once" `Quick
      test_inflight_dedup_computes_once;
    Alcotest.test_case "cache sharded layout and legacy" `Quick
      test_cache_sharded_layout_and_legacy;
    Alcotest.test_case "robust fit survives outliers" `Quick
      test_robust_fit_survives_outliers;
    Alcotest.test_case "telemetry json resilience" `Quick
      test_telemetry_json_resilience;
    QCheck_alcotest.to_alcotest prop_scheduling_never_changes_k;
  ]
