(* The execution engine: scheduling determinism, cache behaviour,
   crash isolation, telemetry. *)

let () = Unix.putenv "WMM_FAST" "1"

open Wmm_engine
open Wmm_core
open Wmm_experiments

let arch = Wmm_isa.Arch.Armv8

(* A deliberately tiny benchmark so each engine test runs in
   milliseconds. *)
let profile =
  { Wmm_workload.Dacapo.spark with Wmm_workload.Profile.threads = 2; units_per_thread = 30 }

let small_sweep engine =
  let batch = Experiment.batch () in
  let finish =
    Experiment.sweep_deferred batch ~samples:2 ~light:true ~iteration_counts:[ 4; 32 ]
      ~code_path:"engine test" ~base:(Exp_common.jvm_nop_base arch)
      ~inject:(fun cf ->
        Exp_common.jvm_platform ~inject_all:[ Wmm_costfn.Cost_function.uop cf ] arch)
      profile
  in
  Experiment.run_batch engine batch;
  finish ()

let test_sequential_vs_parallel () =
  let seq = small_sweep (Engine.create ~jobs:1 ()) in
  let par = small_sweep (Engine.create ~jobs:4 ()) in
  Alcotest.(check bool) "jobs=4 sweep structurally equal to jobs=1" true (seq = par);
  (* The deferred path must also agree with the original direct
     implementation it replaces. *)
  let direct =
    Experiment.sweep ~samples:2 ~light:true ~iteration_counts:[ 4; 32 ]
      ~code_path:"engine test" ~base:(Exp_common.jvm_nop_base arch)
      ~inject:(fun cf ->
        Exp_common.jvm_platform ~inject_all:[ Wmm_costfn.Cost_function.uop cf ] arch)
      profile
  in
  Alcotest.(check bool) "deferred sweep equals direct sweep" true (seq = direct)

let with_temp_cache f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wmm_engine_test_%d_%.0f" (Unix.getpid ()) (Unix.gettimeofday () *. 1e6))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

let test_cache_hit_on_second_run () =
  with_temp_cache (fun dir ->
      let first_engine = Engine.create ~jobs:1 ~cache:(Cache.create ~dir ()) () in
      let first = small_sweep first_engine in
      let s1 = Engine.summary first_engine in
      Alcotest.(check int) "first run computes everything" 0 s1.Telemetry.cached;
      Alcotest.(check bool) "first run stores results" true
        ((Cache.stats (Engine.cache first_engine)).Cache.stores > 0);
      let second_engine = Engine.create ~jobs:2 ~cache:(Cache.create ~dir ()) () in
      let second = small_sweep second_engine in
      let s2 = Engine.summary second_engine in
      Alcotest.(check int) "second run fully cached" s2.Telemetry.total
        s2.Telemetry.cached;
      Alcotest.(check int) "second run computes nothing" 0 s2.Telemetry.ran;
      Alcotest.(check bool) "cached result identical" true (first = second))

let test_failed_task_isolation () =
  let engine = Engine.create ~jobs:2 () in
  let tasks =
    [|
      Task.pure ~key:"ok-1" (fun () -> 1);
      Task.pure ~key:"boom" (fun () -> failwith "boom");
      Task.pure ~key:"ok-3" (fun () -> 3);
    |]
  in
  let results = Engine.run_all engine tasks in
  (match results.(0) with
  | Engine.Computed 1 -> ()
  | _ -> Alcotest.fail "task 0 should compute 1");
  (match results.(1) with
  | Engine.Failed msg ->
      Alcotest.(check bool) "failure message recorded" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "task 1 should fail");
  (match results.(2) with
  | Engine.Computed 3 -> ()
  | _ -> Alcotest.fail "task 2 should compute 3");
  let s = Engine.summary engine in
  Alcotest.(check int) "one failure in telemetry" 1 s.Telemetry.failed;
  Alcotest.(check int) "two tasks ran" 2 s.Telemetry.ran

let test_batch_dedupes_equal_keys () =
  let engine = Engine.create ~jobs:2 () in
  let batch = Engine.Batch.create () in
  let get_a = Engine.Batch.add batch (Task.pure ~key:"shared" (fun () -> 7)) in
  let get_b = Engine.Batch.add batch (Task.pure ~key:"shared" (fun () -> 7)) in
  Engine.Batch.run engine batch;
  Alcotest.(check int) "deduplicated to one task" 1 (Engine.summary engine).Telemetry.total;
  Alcotest.(check int) "both getters see the value" 14
    (Engine.get (get_a ()) + Engine.get (get_b ()))

let test_task_rng_deterministic () =
  let a = Task.rng_for ~root_seed:5 "some/task/key" in
  let b = Task.rng_for ~root_seed:5 "some/task/key" in
  let c = Task.rng_for ~root_seed:5 "other/key" in
  Alcotest.(check int64) "same key, same stream" (Wmm_util.Rng.int64 a)
    (Wmm_util.Rng.int64 b);
  Alcotest.(check bool) "different keys decorrelated" true
    (List.init 8 (fun _ -> Wmm_util.Rng.int64 a)
    <> List.init 8 (fun _ -> Wmm_util.Rng.int64 c))

let test_telemetry_json () =
  let engine = Engine.create ~jobs:1 () in
  ignore (Engine.run_all engine [| Task.pure ~key:"t" (fun () -> ()) |]);
  let path = Filename.temp_file "wmm_telemetry" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Engine.write_telemetry engine path;
      let ic = open_in path in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      List.iter
        (fun needle ->
          let found =
            let n = String.length needle and h = String.length body in
            let rec go i = i + n <= h && (String.sub body i n = needle || go (i + 1)) in
            go 0
          in
          if not found then Alcotest.failf "telemetry JSON missing %S" needle)
        [ "\"tasks_total\": 1"; "\"tasks_ran\": 1"; "\"cache\""; "\"outcome\": \"ran\"" ])

(* The load-bearing determinism property: however the scheduler
   interleaves tasks (any worker count, any submission order), the
   fitted k of a sweep is bit-identical to the sequential result. *)
let prop_scheduling_never_changes_k =
  let reference = lazy (small_sweep (Engine.create ~jobs:1 ())) in
  QCheck.Test.make ~name:"scheduling order never changes fitted k" ~count:6
    QCheck.(pair (int_range 1 4) (int_range 0 5))
    (fun (jobs, noise_tasks) ->
      (* Vary the two scheduling knobs - worker count and what else
         competes for the queue - while the sweep's own submission
         stays fixed.  The fitted k and every point must be
         bit-identical to the sequential reference. *)
      let engine = Engine.create ~jobs () in
      let batch = Experiment.batch () in
      let noise_before =
        List.init noise_tasks (fun i ->
            Engine.Batch.add batch
              (Task.make ~key:(Printf.sprintf "noise-%d" i) (fun rng ->
                   Wmm_util.Stats.summarise
                     (Array.init 4 (fun _ -> 1. +. Wmm_util.Rng.unit_float rng)))))
      in
      let finish =
        Experiment.sweep_deferred batch ~samples:2 ~light:true
          ~iteration_counts:[ 4; 32 ] ~code_path:"engine test"
          ~base:(Exp_common.jvm_nop_base arch)
          ~inject:(fun cf ->
            Exp_common.jvm_platform ~inject_all:[ Wmm_costfn.Cost_function.uop cf ]
              arch)
          profile
      in
      Experiment.run_batch engine batch;
      List.iter (fun get -> ignore (Engine.get (get ()))) noise_before;
      let sweep = finish () in
      let reference = Lazy.force reference in
      sweep.Experiment.fit.Sensitivity.k = reference.Experiment.fit.Sensitivity.k
      && sweep.Experiment.points = reference.Experiment.points)

let suite =
  [
    Alcotest.test_case "sequential vs parallel equality" `Quick
      test_sequential_vs_parallel;
    Alcotest.test_case "cache hit on second run" `Quick test_cache_hit_on_second_run;
    Alcotest.test_case "failed-task isolation" `Quick test_failed_task_isolation;
    Alcotest.test_case "batch dedupes equal keys" `Quick test_batch_dedupes_equal_keys;
    Alcotest.test_case "task rng determinism" `Quick test_task_rng_deterministic;
    Alcotest.test_case "telemetry json" `Quick test_telemetry_json;
    QCheck_alcotest.to_alcotest prop_scheduling_never_changes_k;
  ]
