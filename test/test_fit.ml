open Wmm_util

(* Linear algebra --------------------------------------------------- *)

let test_solve_known () =
  (* [2 1; 1 3] x = [3; 5] -> x = [0.8; 1.4] *)
  let a = [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Linalg.solve a [| 3.; 5. |] in
  Alcotest.(check bool) "x0" true (abs_float (x.(0) -. 0.8) < 1e-12);
  Alcotest.(check bool) "x1" true (abs_float (x.(1) -. 1.4) < 1e-12)

let test_solve_singular () =
  let a = [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" (Failure "Linalg.solve: singular matrix") (fun () ->
      ignore (Linalg.solve a [| 1.; 1. |]))

let test_invert_identity () =
  let a = [| [| 4.; 7. |]; [| 2.; 6. |] |] in
  let inv = Linalg.invert a in
  let product = Linalg.mat_mul a inv in
  let id = Linalg.identity 2 in
  for i = 0 to 1 do
    for j = 0 to 1 do
      Alcotest.(check bool) "identity" true (abs_float (product.(i).(j) -. id.(i).(j)) < 1e-10)
    done
  done

let prop_solve_round_trip =
  (* Generate a diagonally dominant (hence nonsingular) system and
     check a @ solve(a, b) = b. *)
  QCheck.Test.make ~name:"solve round trip" ~count:100
    QCheck.(pair small_int (int_range 1 5))
    (fun (seed, n) ->
      let rng = Rng.create (seed + 1) in
      let a =
        Array.init n (fun i ->
            Array.init n (fun j ->
                if i = j then 10. +. Rng.float rng 5. else Rng.float rng 2. -. 1.))
      in
      let b = Array.init n (fun _ -> Rng.float rng 10. -. 5.) in
      let x = Linalg.solve a b in
      let back = Linalg.mat_vec a x in
      Array.for_all2 (fun u v -> abs_float (u -. v) < 1e-8) back b)

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose involution" ~count:100
    QCheck.(pair (int_range 1 4) (int_range 1 4))
    (fun (r, c) ->
      let m = Array.init r (fun i -> Array.init c (fun j -> float_of_int ((i * 7) + j))) in
      Linalg.transpose (Linalg.transpose m) = m)

(* Curve fitting ---------------------------------------------------- *)

let test_fit_linear () =
  (* y = 3x + 2, exact. *)
  let f params x = (params.(0) *. x) +. params.(1) in
  let xs = Array.init 10 float_of_int in
  let ys = Array.map (fun x -> (3. *. x) +. 2.) xs in
  let r = Fit.curve_fit ~f ~xs ~ys ~init:[| 1.; 0. |] () in
  Alcotest.(check bool) "slope" true (abs_float (r.Fit.params.(0) -. 3.) < 1e-6);
  Alcotest.(check bool) "intercept" true (abs_float (r.Fit.params.(1) -. 2.) < 1e-6);
  Alcotest.(check bool) "rss ~ 0" true (r.Fit.residual_ss < 1e-10)

let test_fit_exponential () =
  let f params x = params.(0) *. exp (-.params.(1) *. x) in
  let xs = Array.init 20 (fun i -> float_of_int i /. 2.) in
  let ys = Array.map (fun x -> 5. *. exp (-0.7 *. x)) xs in
  let r = Fit.curve_fit ~f ~xs ~ys ~init:[| 1.; 0.1 |] () in
  Alcotest.(check bool) "amplitude" true (abs_float (r.Fit.params.(0) -. 5.) < 1e-4);
  Alcotest.(check bool) "decay" true (abs_float (r.Fit.params.(1) -. 0.7) < 1e-4)

let test_fit_with_noise_recovers () =
  let rng = Rng.create 99 in
  let true_k = 0.004 in
  let f params a = 1. /. ((1. -. params.(0)) +. (params.(0) *. a)) in
  let xs = Array.init 12 (fun i -> float_of_int (1 lsl i)) in
  let ys =
    Array.map (fun a -> f [| true_k |] a *. exp (Rng.gaussian rng ~mean:0. ~std:0.01)) xs
  in
  let r = Fit.curve_fit ~f ~xs ~ys ~init:[| 1e-3 |] () in
  Alcotest.(check bool) "k recovered within 10%" true
    (abs_float (r.Fit.params.(0) -. true_k) /. true_k < 0.1);
  Alcotest.(check bool) "std error sane" true
    (Float.is_finite r.Fit.std_errors.(0) && r.Fit.std_errors.(0) > 0.)

let test_fit_rejects_mismatched () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Fit.curve_fit: xs/ys length mismatch") (fun () ->
      ignore
        (Fit.curve_fit ~f:(fun p x -> p.(0) *. x) ~xs:[| 1.; 2. |] ~ys:[| 1. |]
           ~init:[| 1. |] ()))

let test_weighted_fit_ignores_zero_weight () =
  (* y = 2x everywhere except one wildly wrong point; zero-weighting
     that point must recover the exact slope. *)
  let f params x = params.(0) *. x in
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  let ys = [| 2.; 4.; 6.; 8.; 500. |] in
  let weights = [| 1.; 1.; 1.; 1.; 0. |] in
  let r = Fit.curve_fit ~weights ~f ~xs ~ys ~init:[| 1. |] () in
  Alcotest.(check bool) "slope from weighted points only" true
    (abs_float (r.Fit.params.(0) -. 2.) < 1e-9);
  (* Unweighted, the bad point drags the slope far away. *)
  let plain = Fit.curve_fit ~f ~xs ~ys ~init:[| 1. |] () in
  Alcotest.(check bool) "unweighted fit is polluted" true
    (abs_float (plain.Fit.params.(0) -. 2.) > 1.)

let test_huber_fit_resists_outlier () =
  let f params x = (params.(0) *. x) +. params.(1) in
  let xs = Array.init 12 float_of_int in
  let ys = Array.map (fun x -> (3. *. x) +. 2.) xs in
  ys.(7) <- ys.(7) *. 8.;
  let robust = Fit.huber_fit ~f ~xs ~ys ~init:[| 1.; 0. |] () in
  let plain = Fit.curve_fit ~f ~xs ~ys ~init:[| 1.; 0. |] () in
  Alcotest.(check bool) "huber slope within 2%" true
    (abs_float (robust.Fit.params.(0) -. 3.) /. 3. < 0.02);
  Alcotest.(check bool) "plain slope degraded" true
    (abs_float (plain.Fit.params.(0) -. 3.) /. 3. > 0.1)

let test_huber_fit_matches_on_clean_data () =
  let f params x = params.(0) *. exp (-.params.(1) *. x) in
  let xs = Array.init 20 (fun i -> float_of_int i /. 2.) in
  let ys = Array.map (fun x -> 5. *. exp (-0.7 *. x)) xs in
  let robust = Fit.huber_fit ~f ~xs ~ys ~init:[| 1.; 0.1 |] () in
  Alcotest.(check bool) "amplitude" true (abs_float (robust.Fit.params.(0) -. 5.) < 1e-4);
  Alcotest.(check bool) "decay" true (abs_float (robust.Fit.params.(1) -. 0.7) < 1e-4)

(* Sensitivity model ------------------------------------------------ *)

let test_eq1_baseline () =
  (* At a = 1 (the nop baseline) performance is exactly 1. *)
  Alcotest.(check (float 1e-12)) "p(1) = 1" 1. (Wmm_core.Sensitivity.performance ~k:0.005 ~a:1.)

let test_eq2_known () =
  (* The paper's POWER numbers: k=0.01333, p=0.8753 imply a ~ 11.7 ns
     of extra cost (the lwsync -> sync swap). *)
  let a = Wmm_core.Sensitivity.cost_of_change ~k:0.0133 ~p:0.8753 in
  Alcotest.(check bool) "a in [10, 13]" true (a > 10. && a < 13.)

let prop_eq2_inverts_eq1 =
  QCheck.Test.make ~name:"eq2 inverts eq1" ~count:300
    QCheck.(pair (float_range 1e-4 0.05) (float_range 1. 1000.))
    (fun (k, a) ->
      let p = Wmm_core.Sensitivity.performance ~k ~a in
      abs_float (Wmm_core.Sensitivity.cost_of_change ~k ~p -. a) < 1e-6 *. a)

let prop_performance_decreasing =
  QCheck.Test.make ~name:"eq1 decreasing in a" ~count:300
    QCheck.(triple (float_range 1e-4 0.05) (float_range 1. 500.) (float_range 1. 100.))
    (fun (k, a, delta) ->
      Wmm_core.Sensitivity.performance ~k ~a
      >= Wmm_core.Sensitivity.performance ~k ~a:(a +. delta))

let test_fit_k_on_model () =
  let xs = Array.init 10 (fun i -> float_of_int (1 lsl i)) in
  let ys = Array.map (fun a -> Wmm_core.Sensitivity.performance ~k:0.0087 ~a) xs in
  let fit = Wmm_core.Sensitivity.fit_k ~xs ~ys in
  Alcotest.(check bool) "k recovered" true
    (abs_float (fit.Wmm_core.Sensitivity.k -. 0.0087) < 1e-5);
  Alcotest.(check bool) "well suited" true (Wmm_core.Sensitivity.well_suited fit)

let suite =
  [
    Alcotest.test_case "solve known system" `Quick test_solve_known;
    Alcotest.test_case "solve singular" `Quick test_solve_singular;
    Alcotest.test_case "invert identity" `Quick test_invert_identity;
    QCheck_alcotest.to_alcotest prop_solve_round_trip;
    QCheck_alcotest.to_alcotest prop_transpose_involution;
    Alcotest.test_case "fit linear" `Quick test_fit_linear;
    Alcotest.test_case "fit exponential" `Quick test_fit_exponential;
    Alcotest.test_case "fit with noise" `Quick test_fit_with_noise_recovers;
    Alcotest.test_case "fit rejects mismatch" `Quick test_fit_rejects_mismatched;
    Alcotest.test_case "weighted fit ignores zero weight" `Quick
      test_weighted_fit_ignores_zero_weight;
    Alcotest.test_case "huber fit resists outlier" `Quick test_huber_fit_resists_outlier;
    Alcotest.test_case "huber fit matches on clean data" `Quick
      test_huber_fit_matches_on_clean_data;
    Alcotest.test_case "eq1 baseline" `Quick test_eq1_baseline;
    Alcotest.test_case "eq2 known value" `Quick test_eq2_known;
    QCheck_alcotest.to_alcotest prop_eq2_inverts_eq1;
    QCheck_alcotest.to_alcotest prop_performance_decreasing;
    Alcotest.test_case "fit_k on exact model" `Quick test_fit_k_on_model;
  ]
