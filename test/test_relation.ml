open Wmm_model

let pairs_gen =
  QCheck.(list_of_size (Gen.int_range 0 15) (pair (int_range 0 8) (int_range 0 8)))

let rel_of l = Relation.of_list l

let test_basics () =
  let r = Relation.of_list [ (1, 2); (2, 3) ] in
  Alcotest.(check bool) "mem" true (Relation.mem 1 2 r);
  Alcotest.(check bool) "not mem" false (Relation.mem 2 1 r);
  Alcotest.(check int) "cardinal" 2 (Relation.cardinal r)

let test_compose () =
  let r = Relation.of_list [ (1, 2); (5, 6) ] in
  let s = Relation.of_list [ (2, 3); (2, 4) ] in
  let c = Relation.compose r s in
  Alcotest.(check (list (pair int int))) "compose" [ (1, 3); (1, 4) ] (Relation.to_list c)

let test_transitive_closure () =
  let r = Relation.of_list [ (1, 2); (2, 3); (3, 4) ] in
  let tc = Relation.transitive_closure r in
  Alcotest.(check bool) "1->4" true (Relation.mem 1 4 tc);
  Alcotest.(check int) "size" 6 (Relation.cardinal tc)

let test_acyclicity () =
  Alcotest.(check bool) "dag" true (Relation.is_acyclic (rel_of [ (1, 2); (2, 3); (1, 3) ]));
  Alcotest.(check bool) "cycle" false (Relation.is_acyclic (rel_of [ (1, 2); (2, 1) ]));
  Alcotest.(check bool) "self loop" false (Relation.is_acyclic (rel_of [ (3, 3) ]));
  Alcotest.(check bool) "empty" true (Relation.is_acyclic Relation.empty)

let test_cross_identity () =
  let c = Relation.cross [ 1; 2 ] [ 3 ] in
  Alcotest.(check int) "cross size" 2 (Relation.cardinal c);
  let id = Relation.identity_on [ 1; 2; 3 ] in
  Alcotest.(check bool) "id mem" true (Relation.mem 2 2 id)

let prop_union_commutative =
  QCheck.Test.make ~name:"union commutative" ~count:200 (QCheck.pair pairs_gen pairs_gen)
    (fun (a, b) -> Relation.equal (Relation.union (rel_of a) (rel_of b))
        (Relation.union (rel_of b) (rel_of a)))

let prop_compose_associative =
  QCheck.Test.make ~name:"compose associative" ~count:200
    (QCheck.triple pairs_gen pairs_gen pairs_gen) (fun (a, b, c) ->
      let r = rel_of a and s = rel_of b and t = rel_of c in
      Relation.equal
        (Relation.compose (Relation.compose r s) t)
        (Relation.compose r (Relation.compose s t)))

let prop_closure_idempotent =
  QCheck.Test.make ~name:"closure idempotent" ~count:200 pairs_gen (fun l ->
      let tc = Relation.transitive_closure (rel_of l) in
      Relation.equal tc (Relation.transitive_closure tc))

let prop_closure_contains =
  QCheck.Test.make ~name:"closure contains relation" ~count:200 pairs_gen (fun l ->
      Relation.subset (rel_of l) (Relation.transitive_closure (rel_of l)))

let prop_inverse_involution =
  QCheck.Test.make ~name:"inverse involution" ~count:200 pairs_gen (fun l ->
      Relation.equal (rel_of l) (Relation.inverse (Relation.inverse (rel_of l))))

let prop_acyclic_iff_closure_irreflexive =
  QCheck.Test.make ~name:"acyclic iff closure irreflexive" ~count:200 pairs_gen (fun l ->
      let r = rel_of l in
      Relation.is_acyclic r = Relation.is_irreflexive (Relation.transitive_closure r))

(* ------------------------------------------------------------------ *)
(* Backend agreement: the dense Bitrel representation must compute
   exactly what the Set-of-pairs Relation does on every operation the
   exploration core uses.  Events fit in 0..8, so n = 9 and relations
   cross word boundaries only when we bump n past 63 - the large-n
   case below covers the multi-word path too.                          *)
(* ------------------------------------------------------------------ *)

let n_small = 9

let bit_of l = Bitrel.of_relation n_small (rel_of l)

let agree name f_rel f_bit =
  QCheck.Test.make ~name ~count:200 (QCheck.pair pairs_gen pairs_gen) (fun (a, b) ->
      Relation.equal
        (f_rel (rel_of a) (rel_of b))
        (Bitrel.to_relation (f_bit (bit_of a) (bit_of b))))

let prop_bitrel_union = agree "bitrel union agrees" Relation.union Bitrel.union
let prop_bitrel_inter = agree "bitrel inter agrees" Relation.inter Bitrel.inter
let prop_bitrel_diff = agree "bitrel diff agrees" Relation.diff Bitrel.diff
let prop_bitrel_compose = agree "bitrel compose agrees" Relation.compose Bitrel.compose

let prop_bitrel_closure =
  QCheck.Test.make ~name:"bitrel transitive closure agrees" ~count:200 pairs_gen (fun l ->
      Relation.equal
        (Relation.transitive_closure (rel_of l))
        (Bitrel.to_relation (Bitrel.transitive_closure (bit_of l))))

let prop_bitrel_inverse =
  QCheck.Test.make ~name:"bitrel inverse agrees" ~count:200 pairs_gen (fun l ->
      Relation.equal
        (Relation.inverse (rel_of l))
        (Bitrel.to_relation (Bitrel.inverse (bit_of l))))

let prop_bitrel_acyclic =
  QCheck.Test.make ~name:"bitrel acyclicity agrees" ~count:500 pairs_gen (fun l ->
      Relation.is_acyclic (rel_of l) = Bitrel.is_acyclic (bit_of l)
      && Relation.is_irreflexive (rel_of l) = Bitrel.is_irreflexive (bit_of l))

let prop_bitrel_add_remove =
  QCheck.Test.make ~name:"bitrel add/remove roundtrip" ~count:200
    (QCheck.pair pairs_gen (QCheck.pair (QCheck.int_range 0 8) (QCheck.int_range 0 8)))
    (fun (l, (a, b)) ->
      let t = bit_of l in
      let before = Bitrel.mem t a b in
      Bitrel.add t a b;
      let added = Bitrel.mem t a b in
      Bitrel.remove t a b;
      let removed = Bitrel.mem t a b in
      added && (not removed)
      && Relation.equal
           (Bitrel.to_relation t)
           (Relation.of_list (List.filter (fun p -> p <> (a, b)) l))
      && (before = List.mem (a, b) l))

(* Exercise the multi-word rows (n > 63): same algebra, offsets near
   the 63-bit word boundary. *)
let test_bitrel_large () =
  let n = 130 in
  let pairs = [ (0, 62); (62, 63); (63, 64); (64, 127); (127, 129); (129, 0) ] in
  let t = Bitrel.of_list n pairs in
  Alcotest.(check int) "cardinal" (List.length pairs) (Bitrel.cardinal t);
  Alcotest.(check bool) "mem across boundary" true (Bitrel.mem t 63 64);
  let tc = Bitrel.transitive_closure t in
  Alcotest.(check bool) "closure spans words" true (Bitrel.mem tc 0 129);
  Alcotest.(check bool) "cycle detected" false (Bitrel.is_acyclic t);
  Alcotest.(check bool) "acyclic after cut" true
    (Bitrel.is_acyclic (Bitrel.of_list n (List.tl pairs)));
  Alcotest.(check
              (list (pair int int)))
    "roundtrip" (List.sort compare pairs)
    (Relation.to_list (Bitrel.to_relation t))

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "compose" `Quick test_compose;
    Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
    Alcotest.test_case "acyclicity" `Quick test_acyclicity;
    Alcotest.test_case "cross and identity" `Quick test_cross_identity;
    QCheck_alcotest.to_alcotest prop_union_commutative;
    QCheck_alcotest.to_alcotest prop_compose_associative;
    QCheck_alcotest.to_alcotest prop_closure_idempotent;
    QCheck_alcotest.to_alcotest prop_closure_contains;
    QCheck_alcotest.to_alcotest prop_inverse_involution;
    QCheck_alcotest.to_alcotest prop_acyclic_iff_closure_irreflexive;
    Alcotest.test_case "bitrel large n" `Quick test_bitrel_large;
    QCheck_alcotest.to_alcotest prop_bitrel_union;
    QCheck_alcotest.to_alcotest prop_bitrel_inter;
    QCheck_alcotest.to_alcotest prop_bitrel_diff;
    QCheck_alcotest.to_alcotest prop_bitrel_compose;
    QCheck_alcotest.to_alcotest prop_bitrel_closure;
    QCheck_alcotest.to_alcotest prop_bitrel_inverse;
    QCheck_alcotest.to_alcotest prop_bitrel_acyclic;
    QCheck_alcotest.to_alcotest prop_bitrel_add_remove;
  ]
