(* Regenerates the golden verdict table asserted by test_synth:
   `dune exec test/gen_synth_golden.exe > test/data/synth_golden.txt` *)
let () =
  print_string
    (Wmm_synth.Synth.verdict_table ~max_edges:4 Wmm_isa.Arch.[ Armv8; Power7 ])
