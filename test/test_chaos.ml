(* The chaos harness, end to end: a small seeded run against the real
   wmm_bench binary must survive a kill -9, a cache corruption, a
   mid-stream disconnect and a deadline probe with verdicts identical
   to the pristine in-process computation and every fault accounted
   for.  Schedule determinism across runs with the same seed is
   checked structurally here and byte-for-byte by the CI smoke (two
   full runs, diffed). *)

let () = Unix.putenv "WMM_FAST" "1"

open Wmm_chaos

(* The bench binary is declared as a dune dependency and sits one
   directory over from this test executable inside _build; resolving
   relative to the executable works from any cwd. *)
let bin =
  match Sys.getenv_opt "WMM_BENCH_BIN" with
  | Some p -> p
  | None ->
      let build_root = Filename.dirname (Filename.dirname Sys.executable_name) in
      Filename.concat (Filename.concat build_root "bin") "wmm_bench.exe"

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wmm_chaos_test_%d_%.0f" (Unix.getpid ())
         (Unix.gettimeofday () *. 1e6))
  in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

let small_config dir =
  {
    (Chaos.default_config ~bin ~dir) with
    Chaos.seed = 1234;
    battery_limit = 4;
    kills = 1;
    corruptions = 1;
    disconnects = 1;
    deadline_probes = 1;
  }

let test_small_chaos_run () =
  if not (Sys.file_exists bin) then
    Alcotest.failf "wmm_bench binary not found at %s (cwd %s)" bin (Sys.getcwd ());
  with_temp_dir (fun dir ->
      let report = Chaos.run (small_config dir) in
      if not (Chaos.ok report) then
        Alcotest.failf "chaos run failed:\n%s" (Chaos.render report);
      Alcotest.(check (list (pair string string))) "no verdict mismatches" []
        report.Chaos.r_mismatches;
      Alcotest.(check (list string)) "no accounting failures" []
        report.Chaos.r_failures;
      Alcotest.(check int) "battery capped" 4 report.Chaos.r_battery;
      Alcotest.(check bool) "verdict lines cover the battery" true
        (List.length report.Chaos.r_verdicts >= report.Chaos.r_battery);
      List.iter
        (fun line ->
          Alcotest.(check bool)
            (Printf.sprintf "verdict line shape: %s" line)
            true
            (String.length line > 8 && String.sub line 0 8 = "verdict|"))
        report.Chaos.r_verdicts;
      (* Every scheduled fault ran and left evidence. *)
      Alcotest.(check int) "kill executed" 1 report.Chaos.r_kills;
      Alcotest.(check int) "corruption executed" 1 report.Chaos.r_corruptions;
      Alcotest.(check int) "disconnect executed" 1 report.Chaos.r_disconnects;
      Alcotest.(check int) "torn append injected" 1 report.Chaos.r_torn_appends;
      Alcotest.(check int) "deadline probe answered deadline_exceeded"
        report.Chaos.r_deadline_probes report.Chaos.r_deadline_hits;
      Alcotest.(check bool) "quarantined .corrupt evidence on disk" true
        (report.Chaos.r_corrupt_files >= 1);
      Alcotest.(check bool) "kill forced client reconnects" true
        (report.Chaos.r_client_reconnects >= 1);
      Alcotest.(check bool) "final journal fsck found the torn line" true
        (report.Chaos.r_journal_fsck.Wmm_engine.Journal.j_torn >= 1))

let test_schedule_determinism () =
  (* The fault schedule and verdict section are pure functions of the
     seed: two runs with the same config must produce byte-identical
     verdict lists and identical fault counts.  (This is the slow,
     real-daemon version of the property; CI diffs the rendered
     output of two CLI runs the same way.) *)
  if not (Sys.file_exists bin) then
    Alcotest.failf "wmm_bench binary not found at %s" bin;
  let one () = with_temp_dir (fun dir -> Chaos.run (small_config dir)) in
  let a = one () and b = one () in
  if not (Chaos.ok a) then Alcotest.failf "first run failed:\n%s" (Chaos.render a);
  if not (Chaos.ok b) then Alcotest.failf "second run failed:\n%s" (Chaos.render b);
  Alcotest.(check (list string)) "verdict lines byte-identical across runs"
    a.Chaos.r_verdicts b.Chaos.r_verdicts;
  Alcotest.(check (list int)) "fault schedule identical across runs"
    [ a.Chaos.r_kills; a.Chaos.r_corruptions; a.Chaos.r_disconnects;
      a.Chaos.r_torn_appends; a.Chaos.r_deadline_probes ]
    [ b.Chaos.r_kills; b.Chaos.r_corruptions; b.Chaos.r_disconnects;
      b.Chaos.r_torn_appends; b.Chaos.r_deadline_probes ]

let suite =
  [
    Alcotest.test_case "small end-to-end chaos run" `Slow test_small_chaos_run;
    Alcotest.test_case "schedule deterministic across runs" `Slow
      test_schedule_determinism;
  ]
