open Wmm_isa
open Wmm_model
open Wmm_litmus

(* The exploration core: the pruned backtracking rf/co search must be
   outcome-identical to the pre-rewrite generate-and-filter path
   (kept as [Enumerate.Reference]), and its pruning/consistency
   counters must behave sanely. *)

(* --- permutations: duplicate elements are kept ------------------- *)

let test_permutations_duplicates () =
  let perms = Enumerate.Reference.permutations [ 1; 1; 2 ] in
  Alcotest.(check int) "3! permutations even with duplicates" 6 (List.length perms);
  List.iter
    (fun p ->
      Alcotest.(check int) "each keeps all elements" 3 (List.length p);
      Alcotest.(check (list int)) "each is a rearrangement" [ 1; 1; 2 ] (List.sort compare p))
    perms;
  Alcotest.(check int) "three distinct orders" 3
    (List.length (List.sort_uniq compare perms));
  Alcotest.(check int) "4 distinct elements, 24 perms" 24
    (List.length (Enumerate.Reference.permutations [ 1; 2; 3; 4 ]))

(* --- golden: search equals reference on the whole library -------- *)

let outcomes_equal = List.equal (fun a b -> Enumerate.compare_outcome a b = 0)

let test_golden_library model () =
  List.iter
    (fun (t : Test.t) ->
      let p = t.Test.program in
      let fast = Enumerate.allowed_outcomes model p in
      let slow = Enumerate.Reference.allowed_outcomes model p in
      if not (outcomes_equal fast slow) then
        Alcotest.failf "%s under %s: search %d outcomes, reference %d" t.Test.name
          (Axiomatic.model_name model)
          (List.length fast) (List.length slow))
    Library.all

(* --- synthetic worst cases (same shapes the benchmark times) ----- *)

let st loc v = Instr.Store { src = Instr.Imm v; addr = Instr.Imm loc; order = Instr.Plain }
let ld r loc = Instr.Load { dst = r; addr = Instr.Imm loc; order = Instr.Plain }

let iriw3 =
  Program.make ~name:"IRIW+3w" ~location_names:[| "x"; "y" |]
    [
      [| st 0 1 |]; [| st 0 2 |]; [| st 0 3 |];
      [| st 1 1 |]; [| st 1 2 |]; [| st 1 3 |];
      [| ld 0 0; ld 1 1 |];
      [| ld 2 1; ld 3 0 |];
    ]

let co_storm =
  Program.make ~name:"co-storm" ~location_names:[| "x" |]
    [
      [| st 0 1; st 0 2 |];
      [| st 0 3; st 0 4 |];
      [| st 0 5; st 0 6 |];
      [| ld 0 0; ld 1 0 |];
    ]

let test_golden_synthetic () =
  List.iter
    (fun (p, model) ->
      let fast = Enumerate.allowed_outcomes model p in
      let slow = Enumerate.Reference.allowed_outcomes model p in
      Alcotest.(check int)
        (Printf.sprintf "%s/%s outcome count" p.Program.name (Axiomatic.model_name model))
        (List.length slow) (List.length fast);
      Alcotest.(check bool) "outcome lists identical" true (outcomes_equal fast slow))
    [ (iriw3, Axiomatic.Arm); (co_storm, Axiomatic.Tso) ]

(* --- pruning invariants ------------------------------------------ *)

(* On complete candidates the prune screen plus the residual axioms
   must reproduce the full consistency verdict - the correspondence
   [residual_consistent] relies on. *)
let test_prune_residual_invariant () =
  let progs =
    List.filter_map Library.by_name [ "SB"; "MP+dmb+addr"; "IRIW+syncs"; "2+2W"; "LB" ]
    |> List.map (fun t -> t.Test.program)
  in
  List.iter
    (fun p ->
      List.iter
        (fun model ->
          List.iter
            (fun ((x : Execution.t), _) ->
              let st = Axiomatic.prepare model x in
              let n = Array.length x.Execution.events in
              let rf = Bitrel.of_relation n x.Execution.rf in
              let co = Bitrel.of_relation n x.Execution.co in
              let full = Axiomatic.consistent_static st ~rf ~co in
              let via_prune =
                Axiomatic.prune_viable st ~rf ~co
                && Axiomatic.residual_consistent st ~rf ~co
              in
              if full <> via_prune then
                Alcotest.failf "%s/%s: consistent=%b but prune+residual=%b" p.Program.name
                  (Axiomatic.model_name model) full via_prune)
            (Enumerate.candidate_executions p))
        Axiomatic.all_models)
    progs

let test_stats_sanity () =
  let outs, stats = Enumerate.allowed_outcomes_stats Axiomatic.Sc co_storm in
  Alcotest.(check bool) "search pruned subtrees" true (stats.Enumerate.pruned > 0);
  Alcotest.(check bool) "generated bounds consistent" true
    (stats.Enumerate.consistent <= stats.Enumerate.generated);
  Alcotest.(check bool) "outcomes dedup consistent candidates" true
    (List.length outs <= stats.Enumerate.consistent);
  Alcotest.(check int) "well-formed by construction" stats.Enumerate.generated
    stats.Enumerate.well_formed

let test_global_stats_accumulate () =
  Enumerate.reset_global_stats ();
  let zero = Enumerate.global_stats () in
  Alcotest.(check int) "reset clears" 0 zero.Enumerate.generated;
  ignore (Enumerate.allowed_outcomes Axiomatic.Tso iriw3);
  ignore (Enumerate.allowed_outcomes Axiomatic.Sc co_storm);
  let s = Enumerate.global_stats () in
  Alcotest.(check bool) "accumulates generated" true (s.Enumerate.generated > 0);
  Alcotest.(check bool) "accumulates consistent" true (s.Enumerate.consistent > 0);
  Alcotest.(check bool) "accumulates wall clock" true (s.Enumerate.wall_s > 0.)

let test_exists_outcome_agreement () =
  List.iter
    (fun name ->
      let p = (Option.get (Library.by_name name)).Test.program in
      List.iter
        (fun model ->
          let outs = Enumerate.allowed_outcomes model p in
          List.iter
            (fun target ->
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s witness found" name (Axiomatic.model_name model))
                true
                (Enumerate.exists_outcome model p (fun o ->
                     Enumerate.compare_outcome o target = 0)))
            outs;
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s impossible outcome absent" name
               (Axiomatic.model_name model))
            false
            (Enumerate.exists_outcome model p (fun o ->
                 List.exists (fun (_, v) -> v = 99) o.Enumerate.memory)))
        Axiomatic.all_models)
    [ "SB"; "MP"; "LB"; "IRIW" ]

let suite =
  [
    Alcotest.test_case "permutations with duplicates" `Quick test_permutations_duplicates;
    Alcotest.test_case "golden library SC" `Quick (test_golden_library Axiomatic.Sc);
    Alcotest.test_case "golden library TSO" `Quick (test_golden_library Axiomatic.Tso);
    Alcotest.test_case "golden library ARMv8" `Quick (test_golden_library Axiomatic.Arm);
    Alcotest.test_case "golden library POWER" `Quick (test_golden_library Axiomatic.Power);
    Alcotest.test_case "golden synthetic worst cases" `Slow test_golden_synthetic;
    Alcotest.test_case "prune+residual = consistent" `Quick test_prune_residual_invariant;
    Alcotest.test_case "stats sanity" `Quick test_stats_sanity;
    Alcotest.test_case "global stats accumulate" `Quick test_global_stats_accumulate;
    Alcotest.test_case "exists_outcome agreement" `Quick test_exists_outcome_agreement;
  ]
