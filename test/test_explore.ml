open Wmm_isa
open Wmm_model
open Wmm_litmus

(* The exploration core: the pruned backtracking rf/co search must be
   outcome-identical to the pre-rewrite generate-and-filter path
   (kept as [Enumerate.Reference]), and its pruning/consistency
   counters must behave sanely. *)

(* --- permutations: duplicate elements are kept ------------------- *)

let test_permutations_duplicates () =
  let perms = Enumerate.Reference.permutations [ 1; 1; 2 ] in
  Alcotest.(check int) "3! permutations even with duplicates" 6 (List.length perms);
  List.iter
    (fun p ->
      Alcotest.(check int) "each keeps all elements" 3 (List.length p);
      Alcotest.(check (list int)) "each is a rearrangement" [ 1; 1; 2 ] (List.sort compare p))
    perms;
  Alcotest.(check int) "three distinct orders" 3
    (List.length (List.sort_uniq compare perms));
  Alcotest.(check int) "4 distinct elements, 24 perms" 24
    (List.length (Enumerate.Reference.permutations [ 1; 2; 3; 4 ]))

(* --- golden: search equals reference on the whole library -------- *)

let outcomes_equal = List.equal (fun a b -> Enumerate.compare_outcome a b = 0)

let test_golden_library model () =
  List.iter
    (fun (t : Test.t) ->
      let p = t.Test.program in
      let fast = Enumerate.allowed_outcomes model p in
      let slow = Enumerate.Reference.allowed_outcomes model p in
      if not (outcomes_equal fast slow) then
        Alcotest.failf "%s under %s: search %d outcomes, reference %d" t.Test.name
          (Axiomatic.model_name model)
          (List.length fast) (List.length slow))
    Library.all

(* --- synthetic worst cases (same shapes the benchmark times) ----- *)

let st loc v = Instr.Store { src = Instr.Imm v; addr = Instr.Imm loc; order = Instr.Plain }
let ld r loc = Instr.Load { dst = r; addr = Instr.Imm loc; order = Instr.Plain }

let iriw3 =
  Program.make ~name:"IRIW+3w" ~location_names:[| "x"; "y" |]
    [
      [| st 0 1 |]; [| st 0 2 |]; [| st 0 3 |];
      [| st 1 1 |]; [| st 1 2 |]; [| st 1 3 |];
      [| ld 0 0; ld 1 1 |];
      [| ld 2 1; ld 3 0 |];
    ]

let co_storm =
  Program.make ~name:"co-storm" ~location_names:[| "x" |]
    [
      [| st 0 1; st 0 2 |];
      [| st 0 3; st 0 4 |];
      [| st 0 5; st 0 6 |];
      [| ld 0 0; ld 1 0 |];
    ]

let test_golden_synthetic () =
  List.iter
    (fun (p, model) ->
      let fast = Enumerate.allowed_outcomes model p in
      let slow = Enumerate.Reference.allowed_outcomes model p in
      Alcotest.(check int)
        (Printf.sprintf "%s/%s outcome count" p.Program.name (Axiomatic.model_name model))
        (List.length slow) (List.length fast);
      Alcotest.(check bool) "outcome lists identical" true (outcomes_equal fast slow))
    [ (iriw3, Axiomatic.Arm); (co_storm, Axiomatic.Tso) ]

(* --- graph engine: golden vs reference, all five models ---------- *)

let test_graph_golden_library model () =
  List.iter
    (fun (t : Test.t) ->
      let p = t.Test.program in
      let graph = Enumerate.allowed_outcomes ~engine:Enumerate.Graph model p in
      let slow = Enumerate.Reference.allowed_outcomes model p in
      if not (outcomes_equal graph slow) then
        Alcotest.failf "%s under %s: graph %d outcomes, reference %d" t.Test.name
          (Axiomatic.model_name model)
          (List.length graph) (List.length slow))
    Library.all

let test_graph_golden_synthetic () =
  List.iter
    (fun model ->
      List.iter
        (fun (p : Program.t) ->
          let graph = Enumerate.allowed_outcomes ~engine:Enumerate.Graph model p in
          let slow = Enumerate.Reference.allowed_outcomes model p in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s graph = reference" p.Program.name
               (Axiomatic.model_name model))
            true (outcomes_equal graph slow))
        [ iriw3; co_storm ])
    Axiomatic.all_models

(* A deterministic slice of the synthesized battery: shapes (address
   dependencies, fences, mixed orders) the hand-written library does
   not cover. *)
let test_graph_golden_synth_sample () =
  let battery = Wmm_synth.Synth.generate ~max_edges:4 Arch.Armv8 in
  (* ~200 tests spread evenly across the deterministic size-4 battery
     (the reference oracle prices larger synthesized programs out of a
     test that runs it five times per program). *)
  let stride = max 1 (List.length battery / 200) in
  let sample = List.filteri (fun i _ -> i mod stride = 0) battery in
  List.iter
    (fun (g : Wmm_synth.Synth.generated) ->
      let p = g.Wmm_synth.Synth.g_test.Test.program in
      List.iter
        (fun model ->
          let graph = Enumerate.allowed_outcomes ~engine:Enumerate.Graph model p in
          let slow = Enumerate.Reference.allowed_outcomes model p in
          if not (outcomes_equal graph slow) then
            Alcotest.failf "synth %s under %s: graph %d outcomes, reference %d"
              p.Program.name
              (Axiomatic.model_name model)
              (List.length graph) (List.length slow))
        Axiomatic.all_models)
    sample

(* --- symmetry quotient: graph searches 1/N! of the executions ----- *)

let test_symmetry_quotient () =
  (* Identical tier: three byte-identical writers - one canonical
     coherence order stands for all 3! = 6. *)
  let p =
    Program.make ~name:"sym3" ~location_names:[| "x" |]
      [ [| st 0 1 |]; [| st 0 1 |]; [| st 0 1 |] ]
  in
  let po, ps = Enumerate.allowed_outcomes_stats ~engine:Enumerate.Pruned Axiomatic.Sc p in
  let go, gs = Enumerate.allowed_outcomes_stats ~engine:Enumerate.Graph Axiomatic.Sc p in
  Alcotest.(check bool) "identical-tier outcomes agree" true (outcomes_equal po go);
  Alcotest.(check int) "graph searches 1/3! of the executions"
    ps.Enumerate.consistent
    (6 * gs.Enumerate.graph_executions);
  (* Renamed tier: private immediates - same 1/3! quotient, outcomes
     reconstructed through the value substitutions. *)
  let q =
    Program.make ~name:"ren3" ~location_names:[| "x" |]
      [ [| st 0 1 |]; [| st 0 2 |]; [| st 0 3 |] ]
  in
  let qo, qs = Enumerate.allowed_outcomes_stats ~engine:Enumerate.Pruned Axiomatic.Sc q in
  let ho, hs = Enumerate.allowed_outcomes_stats ~engine:Enumerate.Graph Axiomatic.Sc q in
  Alcotest.(check bool) "renamed-tier outcomes agree" true (outcomes_equal qo ho);
  Alcotest.(check int) "renamed tier also quotients by 3!"
    qs.Enumerate.consistent
    (6 * hs.Enumerate.graph_executions)

let test_graph_revisits_exercised () =
  (* Load-buffering shapes force rf promises to writes not yet in the
     graph; the library must exercise the revisit path. *)
  let total =
    List.fold_left
      (fun n (t : Test.t) ->
        let _, s =
          Enumerate.allowed_outcomes_stats ~engine:Enumerate.Graph Axiomatic.Arm
            t.Test.program
        in
        n + s.Enumerate.revisits)
      0 Library.all
  in
  Alcotest.(check bool) "revisit path exercised" true (total > 0)

(* --- adaptive cutover -------------------------------------------- *)

let test_auto_cutover () =
  let sb = (Option.get (Library.by_name "SB")).Test.program in
  let _, s = Enumerate.allowed_outcomes_stats ~engine:Enumerate.Auto Axiomatic.Sc sb in
  Alcotest.(check int) "small test routed to the pruned engine" 1
    s.Enumerate.cutover_small;
  Alcotest.(check int) "no graph executions on a cutover" 0
    s.Enumerate.graph_executions;
  let _, s = Enumerate.allowed_outcomes_stats ~engine:Enumerate.Auto Axiomatic.Arm iriw3 in
  Alcotest.(check int) "big test stays on the graph engine" 0 s.Enumerate.cutover_small;
  Alcotest.(check bool) "graph executions recorded" true
    (s.Enumerate.graph_executions > 0)

(* --- pruning invariants ------------------------------------------ *)

(* On complete candidates the prune screen plus the residual axioms
   must reproduce the full consistency verdict - the correspondence
   [residual_consistent] relies on. *)
let test_prune_residual_invariant () =
  let progs =
    List.filter_map Library.by_name [ "SB"; "MP+dmb+addr"; "IRIW+syncs"; "2+2W"; "LB" ]
    |> List.map (fun t -> t.Test.program)
  in
  List.iter
    (fun p ->
      List.iter
        (fun model ->
          List.iter
            (fun ((x : Execution.t), _) ->
              let st = Axiomatic.prepare model x in
              let n = Array.length x.Execution.events in
              let rf = Bitrel.of_relation n x.Execution.rf in
              let co = Bitrel.of_relation n x.Execution.co in
              let full = Axiomatic.consistent_static st ~rf ~co in
              let via_prune =
                Axiomatic.prune_viable st ~rf ~co
                && Axiomatic.residual_consistent st ~rf ~co
              in
              if full <> via_prune then
                Alcotest.failf "%s/%s: consistent=%b but prune+residual=%b" p.Program.name
                  (Axiomatic.model_name model) full via_prune)
            (Enumerate.candidate_executions p))
        Axiomatic.all_models)
    progs

let test_stats_sanity () =
  let outs, stats = Enumerate.allowed_outcomes_stats Axiomatic.Sc co_storm in
  Alcotest.(check bool) "search pruned subtrees" true (stats.Enumerate.pruned > 0);
  Alcotest.(check bool) "generated bounds consistent" true
    (stats.Enumerate.consistent <= stats.Enumerate.generated);
  Alcotest.(check bool) "outcomes dedup consistent candidates" true
    (List.length outs <= stats.Enumerate.consistent);
  Alcotest.(check int) "well-formed by construction" stats.Enumerate.generated
    stats.Enumerate.well_formed

let test_global_stats_accumulate () =
  Enumerate.reset_global_stats ();
  let zero = Enumerate.global_stats () in
  Alcotest.(check int) "reset clears" 0 zero.Enumerate.generated;
  ignore (Enumerate.allowed_outcomes Axiomatic.Tso iriw3);
  ignore (Enumerate.allowed_outcomes Axiomatic.Sc co_storm);
  let s = Enumerate.global_stats () in
  Alcotest.(check bool) "accumulates generated" true (s.Enumerate.generated > 0);
  Alcotest.(check bool) "accumulates consistent" true (s.Enumerate.consistent > 0);
  Alcotest.(check bool) "accumulates wall clock" true (s.Enumerate.wall_s > 0.)

let test_exists_outcome_agreement () =
  List.iter
    (fun name ->
      let p = (Option.get (Library.by_name name)).Test.program in
      List.iter
        (fun model ->
          let outs = Enumerate.allowed_outcomes model p in
          List.iter
            (fun target ->
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s witness found" name (Axiomatic.model_name model))
                true
                (Enumerate.exists_outcome model p (fun o ->
                     Enumerate.compare_outcome o target = 0)))
            outs;
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s impossible outcome absent" name
               (Axiomatic.model_name model))
            false
            (Enumerate.exists_outcome model p (fun o ->
                 List.exists (fun (_, v) -> v = 99) o.Enumerate.memory)))
        Axiomatic.all_models)
    [ "SB"; "MP"; "LB"; "IRIW" ]

let suite =
  [
    Alcotest.test_case "permutations with duplicates" `Quick test_permutations_duplicates;
    Alcotest.test_case "golden library SC" `Quick (test_golden_library Axiomatic.Sc);
    Alcotest.test_case "golden library TSO" `Quick (test_golden_library Axiomatic.Tso);
    Alcotest.test_case "golden library ARMv8" `Quick (test_golden_library Axiomatic.Arm);
    Alcotest.test_case "golden library POWER" `Quick (test_golden_library Axiomatic.Power);
    Alcotest.test_case "golden synthetic worst cases" `Slow test_golden_synthetic;
    Alcotest.test_case "graph golden library SC" `Quick (test_graph_golden_library Axiomatic.Sc);
    Alcotest.test_case "graph golden library TSO" `Quick (test_graph_golden_library Axiomatic.Tso);
    Alcotest.test_case "graph golden library ARMv8" `Quick (test_graph_golden_library Axiomatic.Arm);
    Alcotest.test_case "graph golden library POWER" `Quick (test_graph_golden_library Axiomatic.Power);
    Alcotest.test_case "graph golden library RC11" `Quick (test_graph_golden_library Axiomatic.Rc11);
    Alcotest.test_case "graph golden synthetic worst cases" `Slow test_graph_golden_synthetic;
    Alcotest.test_case "graph golden synth sample" `Slow test_graph_golden_synth_sample;
    Alcotest.test_case "symmetry quotient 1/N!" `Quick test_symmetry_quotient;
    Alcotest.test_case "graph revisit path exercised" `Quick test_graph_revisits_exercised;
    Alcotest.test_case "auto cutover routing" `Quick test_auto_cutover;
    Alcotest.test_case "prune+residual = consistent" `Quick test_prune_residual_invariant;
    Alcotest.test_case "stats sanity" `Quick test_stats_sanity;
    Alcotest.test_case "global stats accumulate" `Quick test_global_stats_accumulate;
    Alcotest.test_case "exists_outcome agreement" `Quick test_exists_outcome_agreement;
  ]
