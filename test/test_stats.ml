open Wmm_util

let close ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let test_mean () = close "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |])

let test_mean_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty sample array") (fun () ->
      ignore (Stats.mean [||]))

let test_geometric_mean () =
  close "gmean" 4. (Stats.geometric_mean [| 2.; 8. |]);
  close "gmean singleton" 7. (Stats.geometric_mean [| 7. |])

let test_geometric_mean_rejects_nonpositive () =
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geometric_mean: non-positive sample") (fun () ->
      ignore (Stats.geometric_mean [| 1.; 0. |]))

let test_variance () =
  (* Sample variance of 2,4,4,4,5,5,7,9 is 32/7. *)
  close "variance" (32. /. 7.) (Stats.variance [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let test_median_percentile () =
  close "median odd" 3. (Stats.median [| 1.; 3.; 9. |]);
  close "median even" 2.5 (Stats.median [| 1.; 2.; 3.; 4. |]);
  close "p0" 1. (Stats.percentile [| 3.; 1.; 2. |] 0.);
  close "p100" 3. (Stats.percentile [| 3.; 1.; 2. |] 100.);
  close "p50 interpolated" 2. (Stats.percentile [| 3.; 1.; 2. |] 50.)

let test_min_max () =
  close "min" 1. (Stats.minimum [| 3.; 1.; 2. |]);
  close "max" 3. (Stats.maximum [| 3.; 1.; 2. |])

let test_median_of_means () =
  (* One bucket per element degenerates to the median; a single
     bucket degenerates to the mean. *)
  close "b=n is median" 3. (Stats.median_of_means ~buckets:5 [| 1.; 2.; 3.; 4.; 100. |]);
  close "b=1 is mean" 22. (Stats.median_of_means ~buckets:1 [| 1.; 2.; 3.; 4.; 100. |]);
  (* Default bucketing bounds the influence of a single outlier:
     closer to the typical value than the mean is. *)
  let samples = Array.append (Array.make 15 10.) [| 1000. |] in
  let mom = Stats.median_of_means samples in
  Alcotest.(check bool) "outlier influence bounded" true
    (abs_float (mom -. 10.) < abs_float (Stats.mean samples -. 10.))

let test_mad () =
  close "mad" 1. (Stats.mad [| 1.; 2.; 3.; 4.; 5. |]);
  close "mad constant" 0. (Stats.mad [| 7.; 7.; 7. |]);
  (* MAD is immune to a single wild value where std is not. *)
  close "mad with outlier" 1. (Stats.mad [| 1.; 2.; 3.; 4.; 1000. |])

let test_reject_outliers () =
  let clean = [| 10.; 10.5; 9.8; 10.2; 9.9; 10.1 |] in
  Alcotest.(check int) "clean data untouched" (Array.length clean)
    (Array.length (Stats.reject_outliers clean));
  let dirty = Array.append clean [| 100. |] in
  let kept = Stats.reject_outliers dirty in
  Alcotest.(check int) "outlier rejected" (Array.length clean) (Array.length kept);
  Alcotest.(check bool) "outlier gone" true (Array.for_all (fun x -> x < 50.) kept);
  (* Degenerate inputs pass through rather than emptying the sample. *)
  Alcotest.(check int) "tiny samples untouched" 3
    (Array.length (Stats.reject_outliers [| 1.; 2.; 1000. |]));
  Alcotest.(check int) "zero MAD untouched" 4
    (Array.length (Stats.reject_outliers [| 5.; 5.; 5.; 900. |]))

let test_log_gamma () =
  (* gamma(5) = 24, gamma(0.5) = sqrt(pi). *)
  close ~eps:1e-10 "log_gamma 5" (log 24.) (Stats.log_gamma 5.);
  close ~eps:1e-10 "log_gamma 0.5" (0.5 *. log Float.pi) (Stats.log_gamma 0.5)

let test_incomplete_beta () =
  (* I_x(1,1) = x; I_x(2,2) = 3x^2 - 2x^3. *)
  close ~eps:1e-9 "I_x(1,1)" 0.3 (Stats.incomplete_beta ~a:1. ~b:1. ~x:0.3);
  close ~eps:1e-9 "I_x(2,2)" (3. *. 0.49 -. (2. *. 0.343))
    (Stats.incomplete_beta ~a:2. ~b:2. ~x:0.7)

let test_t_cdf () =
  (* t-distribution with df=1 is Cauchy: CDF(1) = 3/4. *)
  close ~eps:1e-9 "cauchy" 0.75 (Stats.t_cdf ~df:1. 1.);
  close ~eps:1e-9 "symmetry" 0.25 (Stats.t_cdf ~df:1. (-1.))

let test_t_critical () =
  (* Standard table values. *)
  close ~eps:1e-3 "df=1" 12.706 (Stats.t_critical ~confidence:0.95 ~df:1.);
  close ~eps:1e-3 "df=5" 2.5706 (Stats.t_critical ~confidence:0.95 ~df:5.);
  close ~eps:1e-3 "df=30" 2.0423 (Stats.t_critical ~confidence:0.95 ~df:30.);
  close ~eps:1e-3 "99%, df=10" 3.1693 (Stats.t_critical ~confidence:0.99 ~df:10.)

let test_confidence_interval () =
  let samples = [| 10.; 12.; 11.; 9.; 13.; 11. |] in
  let ci = Stats.confidence_interval samples in
  let m = Stats.mean samples in
  Alcotest.(check bool) "contains mean" true (ci.Stats.lo < m && m < ci.Stats.hi);
  (* Half-width = t * sem. *)
  let half = Stats.t_critical ~confidence:0.95 ~df:5. *. Stats.std_error samples in
  close ~eps:1e-9 "half width" half ((ci.Stats.hi -. ci.Stats.lo) /. 2.)

let test_summary_and_ratio () =
  let base = Stats.summarise [| 100.; 102.; 98. |] in
  let test = Stats.summarise [| 50.; 51.; 49. |] in
  let rel = Stats.ratio_summary ~test ~base in
  Alcotest.(check bool) "ratio near 0.5" true (abs_float (rel.Stats.gmean -. 0.5) < 0.01);
  (* Pessimistic compounding per the paper. *)
  close ~eps:1e-9 "comparative min" (49. /. 102.) rel.Stats.smin;
  close ~eps:1e-9 "comparative max" (51. /. 98.) rel.Stats.smax

let prop_beta_symmetry =
  QCheck.Test.make ~name:"I_x(a,b) + I_1-x(b,a) = 1" ~count:200
    QCheck.(triple (float_range 0.5 5.) (float_range 0.5 5.) (float_range 0.01 0.99))
    (fun (a, b, x) ->
      let lhs = Stats.incomplete_beta ~a ~b ~x +. Stats.incomplete_beta ~a:b ~b:a ~x:(1. -. x) in
      abs_float (lhs -. 1.) < 1e-8)

let prop_gmean_le_amean =
  QCheck.Test.make ~name:"geometric mean <= arithmetic mean" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range 0.1 100.))
    (fun l ->
      let a = Array.of_list l in
      Stats.geometric_mean a <= Stats.mean a +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(
      pair (list_of_size (Gen.int_range 2 20) (float_range 0. 100.)) (float_range 0. 99.))
    (fun (l, p) ->
      let a = Array.of_list l in
      Stats.percentile a p <= Stats.percentile a (p +. 1.) +. 1e-9)

let prop_ci_widens_with_confidence =
  QCheck.Test.make ~name:"CI widens with confidence" ~count:50
    QCheck.(list_of_size (Gen.int_range 3 15) (float_range 1. 10.))
    (fun l ->
      let a = Array.of_list l in
      if Stats.std a < 1e-12 then true
      else begin
        let c90 = Stats.confidence_interval ~confidence:0.9 a in
        let c99 = Stats.confidence_interval ~confidence:0.99 a in
        c99.Stats.hi -. c99.Stats.lo >= c90.Stats.hi -. c90.Stats.lo -. 1e-9
      end)

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "mean empty" `Quick test_mean_empty;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
    Alcotest.test_case "geometric mean non-positive" `Quick
      test_geometric_mean_rejects_nonpositive;
    Alcotest.test_case "variance" `Quick test_variance;
    Alcotest.test_case "median and percentiles" `Quick test_median_percentile;
    Alcotest.test_case "min max" `Quick test_min_max;
    Alcotest.test_case "median of means" `Quick test_median_of_means;
    Alcotest.test_case "mad" `Quick test_mad;
    Alcotest.test_case "reject outliers" `Quick test_reject_outliers;
    Alcotest.test_case "log gamma" `Quick test_log_gamma;
    Alcotest.test_case "incomplete beta" `Quick test_incomplete_beta;
    Alcotest.test_case "t cdf" `Quick test_t_cdf;
    Alcotest.test_case "t critical values" `Quick test_t_critical;
    Alcotest.test_case "confidence interval" `Quick test_confidence_interval;
    Alcotest.test_case "summary and ratio compounding" `Quick test_summary_and_ratio;
    QCheck_alcotest.to_alcotest prop_beta_symmetry;
    QCheck_alcotest.to_alcotest prop_gmean_le_amean;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_ci_widens_with_confidence;
  ]
