(* Randomised soundness testing: generate small random multi-threaded
   programs and check that every outcome the operational relaxed
   machine can reach is allowed by the architecture's axiomatic
   model.  This is the strongest evidence that the two semantic
   layers agree - it explores shapes no hand-written litmus test
   covers.

   Reproducibility: every property derives its programs from the
   integer seed QCheck feeds it, so a failure report names the exact
   seed.  Set WMM_FUZZ_SEED=<n> to pin every iteration to that one
   seed (bit-for-bit replay of a reported failure) and WMM_FUZZ_ITERS
   to override the iteration count (e.g. 1 for a single replay, or a
   large value for a soak run).  On a violation the report includes
   the greedily shrunk program in litmus syntax. *)

open Wmm_isa
open Wmm_model
open Wmm_machine
open Wmm_util

let iterations =
  match Option.map int_of_string_opt (Sys.getenv_opt "WMM_FUZZ_ITERS") with
  | Some (Some n) when n > 0 -> n
  | Some _ -> failwith "WMM_FUZZ_ITERS must be a positive integer"
  | None -> 60

let pinned_seed =
  match Option.map int_of_string_opt (Sys.getenv_opt "WMM_FUZZ_SEED") with
  | Some (Some n) -> Some n
  | Some None -> failwith "WMM_FUZZ_SEED must be an integer"
  | None -> None

(* Generate a random straight-line thread over two locations and a
   few registers, drawing from stores, loads, barriers, ALU ops and
   dependency idioms. *)
let random_instr rng arch =
  match Rng.int rng 12 with
  | 0 | 1 | 2 ->
      Instr.Store
        { src = Instr.Imm (1 + Rng.int rng 2); addr = Instr.Imm (Rng.int rng 2);
          order = Instr.Plain }
  | 3 | 4 | 5 ->
      Instr.Load { dst = 1 + Rng.int rng 3; addr = Instr.Imm (Rng.int rng 2);
                   order = Instr.Plain }
  | 6 ->
      let barriers =
        match arch with
        | Arch.Armv8 -> [| Instr.Dmb_ish; Instr.Dmb_ishld; Instr.Dmb_ishst |]
        | Arch.Power7 -> [| Instr.Sync; Instr.Lwsync; Instr.Eieio |]
      in
      Instr.Barrier (Rng.choose rng barriers)
  | 7 ->
      Instr.Op
        { op = Instr.Xor; dst = 1 + Rng.int rng 3; a = Instr.Reg (1 + Rng.int rng 3);
          b = Instr.Reg (1 + Rng.int rng 3) }
  | 8 -> (
      match arch with
      | Arch.Armv8 ->
          Instr.Load { dst = 1 + Rng.int rng 3; addr = Instr.Imm (Rng.int rng 2);
                       order = Instr.Acquire }
      | Arch.Power7 ->
          Instr.Load { dst = 1 + Rng.int rng 3; addr = Instr.Imm (Rng.int rng 2);
                       order = Instr.Plain })
  | 9 -> (
      match arch with
      | Arch.Armv8 ->
          Instr.Store
            { src = Instr.Imm (1 + Rng.int rng 2); addr = Instr.Imm (Rng.int rng 2);
              order = Instr.Release }
      | Arch.Power7 ->
          Instr.Store
            { src = Instr.Imm (1 + Rng.int rng 2); addr = Instr.Imm (Rng.int rng 2);
              order = Instr.Plain })
  | 10 ->
      Instr.Load_exclusive
        { dst = 1 + Rng.int rng 3; addr = Instr.Imm (Rng.int rng 2); order = Instr.Plain }
  | _ ->
      Instr.Store_exclusive
        { status = 1 + Rng.int rng 3; src = Instr.Imm (1 + Rng.int rng 2);
          addr = Instr.Imm (Rng.int rng 2); order = Instr.Plain }

let random_program rng arch =
  let threads = 2 in
  let thread _ = Array.init (1 + Rng.int rng 3) (fun _ -> random_instr rng arch) in
  Program.make ~name:"fuzz" ~location_names:[| "x"; "y" |]
    (List.init threads thread)

(* The first machine-reachable outcome the model forbids, if any. *)
let escape machine_config model program =
  let operational = Relaxed.enumerate ~max_states:200_000 machine_config program in
  let axiomatic = Enumerate.allowed_outcomes model program in
  let ax_pairs =
    List.map
      (fun (o : Enumerate.outcome) -> (o.Enumerate.registers, o.Enumerate.memory))
      axiomatic
  in
  List.find_opt
    (fun (o : Relaxed.outcome) ->
      not (List.mem (o.Relaxed.registers, o.Relaxed.memory) ax_pairs))
    operational

let as_test (program : Program.t) =
  Wmm_litmus.Test.make ~name:"fuzz" ~description:"fuzz counterexample"
    ~locations:program.Program.location_names ~init:program.Program.init
    ~threads:(Array.to_list program.Program.threads)
    ~condition:[] ~mem_condition:[] ~expected:[] ()

(* One soundness property: the machine at [machine_config] must stay
   within [model].  [salt] decorrelates the seed streams of the
   different machine/model pairings. *)
let soundness_property ~name ~arch ~machine_config ~model ~salt =
  QCheck.Test.make ~name ~count:iterations QCheck.small_int (fun qcheck_seed ->
      let seed = match pinned_seed with Some s -> s | None -> qcheck_seed in
      let rng = Rng.create (seed + salt) in
      let program = random_program rng arch in
      match escape machine_config model program with
      | None -> true
      | Some (o : Relaxed.outcome) ->
          let still_fails (t : Wmm_litmus.Test.t) =
            match escape machine_config model t.Wmm_litmus.Test.program with
            | Some _ -> true
            | None | (exception Failure _) -> false
          in
          let shrunk = Wmm_synth.Conform.shrink still_fails (as_test program) in
          QCheck.Test.fail_reportf
            "unsound at seed %d (replay: WMM_FUZZ_SEED=%d WMM_FUZZ_ITERS=1): machine \
             reaches %s, forbidden by %s\nshrunk program:\n%s"
            seed seed
            (Enumerate.outcome_to_string program
               { Enumerate.registers = o.Relaxed.registers; memory = o.Relaxed.memory })
            (Axiomatic.model_name model)
            (Wmm_litmus.Parse.to_text ~arch shrunk))

(* Certify-and-check: verdicts over fuzzed programs must yield
   certificates the independent checker accepts.  The allowed verdict
   takes the first axiomatically allowed outcome as its condition; the
   forbidden one conditions on a register the generator never writes.
   On rejection the certificate is written out so the report names its
   path alongside the replay seed. *)
let certify_property ~name ~arch ~model ~salt =
  QCheck.Test.make ~name ~count:iterations QCheck.small_int (fun qcheck_seed ->
      let seed = match pinned_seed with Some s -> s | None -> qcheck_seed in
      let rng = Rng.create (seed + salt) in
      let program = random_program rng arch in
      let fail_cert kind cert (r : Wmm_cert.Checker.reason) =
        let path = Filename.temp_file "wmm_fuzz" ".cert" in
        let oc = open_out_bin path in
        output_string oc (Wmm_cert.Certificate.to_string cert);
        close_out oc;
        QCheck.Test.fail_reportf
          "%s certificate rejected at seed %d (replay: WMM_FUZZ_SEED=%d \
           WMM_FUZZ_ITERS=1): %s\nfailing certificate: %s"
          kind seed seed
          (Wmm_cert.Checker.reason_string r)
          path
      in
      let checked kind cert =
        match Wmm_cert.Checker.check cert with
        | Ok () -> true
        | Error r -> fail_cert kind cert r
      in
      let allowed_ok =
        match Enumerate.allowed_outcomes model program with
        | [] -> true
        | o :: _ -> (
            let cond =
              { Wmm_cert.Certificate.c_regs = o.Enumerate.registers;
                c_mem = o.Enumerate.memory }
            in
            match Wmm_certify.Emit.allowed model program cond with
            | Ok cert -> checked "allowed" cert
            | Error msg ->
                QCheck.Test.fail_reportf
                  "allowed verdict not certifiable at seed %d (replay: \
                   WMM_FUZZ_SEED=%d WMM_FUZZ_ITERS=1): %s"
                  seed seed msg)
      in
      (* Register 9 is outside the generator's range, so this
         condition is forbidden under every model. *)
      let unreachable = { Wmm_cert.Certificate.c_regs = [ ((0, 9), 1) ]; c_mem = [] } in
      allowed_ok
      &&
      match Wmm_certify.Emit.forbidden model program unreachable with
      | Ok cert -> checked "forbidden" cert
      | Error _ -> true (* size cap / fuel: emission declined, nothing to check *))

let fuzz_arm =
  soundness_property ~name:"random programs: operational within ARMv8 model"
    ~arch:Arch.Armv8 ~machine_config:Relaxed.relaxed_config ~model:Axiomatic.Arm ~salt:0

let fuzz_power =
  soundness_property ~name:"random programs: operational within POWER model"
    ~arch:Arch.Power7 ~machine_config:Relaxed.relaxed_config ~model:Axiomatic.Power
    ~salt:0

let fuzz_sc_within_tso =
  (* The SC machine's outcomes are TSO-allowed (strength ordering). *)
  soundness_property ~name:"random programs: SC machine within TSO model"
    ~arch:Arch.Armv8 ~machine_config:Relaxed.sc_config ~model:Axiomatic.Tso ~salt:7777

let fuzz_tso_within_arm =
  soundness_property ~name:"random programs: TSO machine within ARM model"
    ~arch:Arch.Armv8 ~machine_config:Relaxed.tso_config ~model:Axiomatic.Arm
    ~salt:13_131

let fuzz_certify_arm =
  certify_property ~name:"random programs: ARMv8 verdict certificates check"
    ~arch:Arch.Armv8 ~model:Axiomatic.Arm ~salt:27_000

let fuzz_certify_power =
  certify_property ~name:"random programs: POWER verdict certificates check"
    ~arch:Arch.Power7 ~model:Axiomatic.Power ~salt:28_000

let suite =
  [
    QCheck_alcotest.to_alcotest ~long:true fuzz_arm;
    QCheck_alcotest.to_alcotest ~long:true fuzz_power;
    QCheck_alcotest.to_alcotest ~long:true fuzz_sc_within_tso;
    QCheck_alcotest.to_alcotest ~long:true fuzz_tso_within_arm;
    QCheck_alcotest.to_alcotest ~long:true fuzz_certify_arm;
    QCheck_alcotest.to_alcotest ~long:true fuzz_certify_power;
  ]
