(* Regenerates the golden certificate fixtures asserted by test_cert:
   `dune exec test/gen_cert_golden.exe > test/data/cert_golden.txt`
   One section per (test, model) pair: a "== <test> <model> =="
   header followed by the certificate text.  The case list must stay
   in sync with test_cert.ml. *)

open Wmm_isa
open Wmm_model
open Wmm_litmus

let co_storm =
  let st v = Instr.Store { src = Instr.Imm v; addr = Instr.Imm 0; order = Instr.Plain } in
  let ld r = Instr.Load { dst = r; addr = Instr.Imm 0; order = Instr.Plain } in
  Test.make ~name:"co-storm" ~description:"six writes, one observer thread"
    ~locations:[| "x" |]
    ~threads:[ [| st 1; st 2 |]; [| st 3; st 4 |]; [| st 5; st 6 |]; [| ld 0; ld 1 |] ]
    ~condition:[ ((3, 0), 5); ((3, 1), 6) ]
    ~expected:(List.map (fun m -> (m, true)) Axiomatic.all_models)
    ()

let cases =
  [
    Option.get (Library.by_name "SB");
    Option.get (Library.by_name "MP");
    Option.get (Library.by_name "IRIW");
    co_storm;
  ]

let () =
  List.iter
    (fun (t : Test.t) ->
      List.iter
        (fun model ->
          match Wmm_certify.Emit.litmus model t with
          | Ok cert ->
              Printf.printf "== %s %s ==\n%s" t.Test.name (Axiomatic.model_name model)
                (Wmm_cert.Certificate.to_string cert)
          | Error msg ->
              failwith
                (Printf.sprintf "%s under %s: %s" t.Test.name
                   (Axiomatic.model_name model) msg))
        Axiomatic.all_models)
    cases
