(* The differential conformance harness: a clean battery produces no
   disagreements across all three layers; a model copy with one axiom
   planted out (sc-per-location ignored by the oracle) is detected,
   reported against the right layer, and shrunk to a minimal failing
   test; and conformance tasks replay from the result cache. *)

open Wmm_isa
open Wmm_model
open Wmm_litmus
open Wmm_synth

let battery arch n =
  List.filteri
    (fun i _ -> i < n)
    (List.map (fun g -> g.Synth.g_test) (Synth.generate ~max_edges:3 arch))

let test_clean () =
  List.iter
    (fun arch ->
      let engine = Wmm_engine.Engine.create ~jobs:0 () in
      let report =
        Conform.run
          ~config:{ Conform.default_config with infer_limit = 6 }
          ~engine ~arch (battery arch 40)
      in
      Alcotest.(check int)
        (Arch.name arch ^ " clean battery: no disagreements")
        0
        (List.length report.Conform.disagreements);
      Alcotest.(check bool)
        (Arch.name arch ^ " explore layer ran")
        true
        (report.Conform.explore_checks > 0);
      Alcotest.(check bool)
        (Arch.name arch ^ " machine layer ran")
        true
        (report.Conform.machine_checks > 0);
      Alcotest.(check int) (Arch.name arch ^ " inference layer ran") 6
        report.Conform.infer_checks)
    [ Arch.Armv8; Arch.Power7 ]

(* A test-only weakened model: the oracle admits candidate executions
   that violate sc-per-location (and only that axiom), as if the
   coherence axiom had been dropped from the model definition. *)
let weakened_oracle =
  {
    Conform.oracle_id = "test/planted-sc-per-location";
    outcomes =
      (fun model p ->
        Enumerate.Reference.candidate_executions p
        |> List.filter_map (fun (x, o) ->
               let violations = Axiomatic.violations model x in
               if List.for_all (fun v -> v = "sc-per-location") violations then Some o
               else None)
        |> List.sort_uniq Enumerate.compare_outcome);
  }

let instr_count (t : Test.t) =
  Array.fold_left
    (fun acc th -> acc + Array.length th)
    0 t.Test.program.Program.threads

let test_planted_bug () =
  let engine = Wmm_engine.Engine.create ~jobs:0 () in
  let tests = battery Arch.Armv8 30 in
  let report =
    Conform.run
      ~config:
        {
          Conform.default_config with
          oracle = weakened_oracle;
          machine = false;
          infer_limit = 0;
        }
      ~engine ~arch:Arch.Armv8 tests
  in
  Alcotest.(check bool)
    "planted axiom weakening is detected" true
    (report.Conform.disagreements <> []);
  List.iter
    (fun (d : Conform.disagreement) ->
      Alcotest.(check bool)
        "disagreement is reported against the explore layer" true
        (d.Conform.layer = Conform.Explore);
      (* Shrinking must reach a minimal witness: sc-per-location
         failures reduce to two accesses on a single thread (tests that
         start out that small, e.g. CoWR, stay put). *)
      Alcotest.(check bool)
        (d.Conform.test.Test.name ^ " shrinks to at most two instructions")
        true
        (instr_count d.Conform.shrunk <= 2
        && instr_count d.Conform.shrunk <= instr_count d.Conform.test);
      Alcotest.(check bool)
        (d.Conform.test.Test.name ^ " shrinks to a single thread")
        true
        (Array.length d.Conform.shrunk.Test.program.Program.threads = 1);
      (* The shrunk witness still fails the same check. *)
      let still_fails (t : Test.t) =
        let p = t.Test.program in
        let sorted l = List.sort_uniq Enumerate.compare_outcome l in
        sorted (Enumerate.allowed_outcomes Axiomatic.Tso p)
        <> sorted (weakened_oracle.Conform.outcomes Axiomatic.Tso p)
      in
      Alcotest.(check bool)
        (d.Conform.test.Test.name ^ " shrunk witness still disagrees")
        true
        (match d.Conform.model with
        | Some Axiomatic.Tso -> still_fails d.Conform.shrunk
        | _ -> true))
    report.Conform.disagreements

let test_render_mentions_disagreement () =
  let engine = Wmm_engine.Engine.create ~jobs:0 () in
  let report =
    Conform.run
      ~config:
        {
          Conform.default_config with
          oracle = weakened_oracle;
          machine = false;
          infer_limit = 0;
        }
      ~engine ~arch:Arch.Armv8 (battery Arch.Armv8 10)
  in
  let rendered = Conform.render report in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  if report.Conform.disagreements <> [] then begin
    Alcotest.(check bool)
      "render names the layer" true
      (contains rendered "explore-vs-oracle");
    Alcotest.(check bool) "render shows litmus syntax" true (contains rendered "exists")
  end

let test_cached_rerun () =
  let dir = Filename.temp_file "wmm_conform_cache" "" in
  Sys.remove dir;
  let cache () = Wmm_engine.Cache.create ~dir () in
  let tests = battery Arch.Armv8 12 in
  let run () =
    let engine = Wmm_engine.Engine.create ~jobs:1 ~cache:(cache ()) () in
    let report =
      Conform.run
        ~config:{ Conform.default_config with infer_limit = 0 }
        ~engine ~arch:Arch.Armv8 tests
    in
    (report, Wmm_engine.Engine.summary engine)
  in
  let r1, s1 = run () in
  let r2, s2 = run () in
  Alcotest.(check int) "first run computes" s1.Wmm_engine.Telemetry.total
    s1.Wmm_engine.Telemetry.ran;
  Alcotest.(check int) "second run is fully cached" 0 s2.Wmm_engine.Telemetry.ran;
  Alcotest.(check int) "reports agree" (List.length r1.Conform.disagreements)
    (List.length r2.Conform.disagreements)

let suite =
  [
    Alcotest.test_case "clean battery conforms (all layers)" `Quick test_clean;
    Alcotest.test_case "planted axiom weakening detected and shrunk" `Quick
      test_planted_bug;
    Alcotest.test_case "report renders shrunk litmus tests" `Quick
      test_render_mentions_disagreement;
    Alcotest.test_case "conformance tasks replay from cache" `Quick test_cached_rerun;
  ]
