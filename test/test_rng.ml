open Wmm_util

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_copy_does_not_advance () =
  let a = Rng.create 7 in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy equals original" (Rng.int64 a) (Rng.int64 b)

let test_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.bits a) in
  let ys = List.init 20 (fun _ -> Rng.bits b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

(* The property the execution engine depends on: once split streams
   are derived, the order in which they are consumed - i.e. the order
   worker domains happen to schedule their tasks - cannot change any
   stream's output. *)
let test_split_order_independent () =
  let consume order =
    let root = Rng.create 99 in
    let streams = Array.init 4 (fun _ -> Rng.split root) in
    let out = Array.make 4 [] in
    List.iter (fun i -> out.(i) <- List.init 8 (fun _ -> Rng.int64 streams.(i))) order;
    out
  in
  let sequential = consume [ 0; 1; 2; 3 ] in
  let shuffled = consume [ 3; 1; 0; 2 ] in
  Array.iteri
    (fun i xs ->
      Alcotest.(check (list int64))
        (Printf.sprintf "stream %d identical under reordering" i)
        xs shuffled.(i))
    sequential

let test_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_rejects_bad_bound () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_unit_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.unit_float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0. && v < 1.)
  done

let test_uniform_mean () =
  let rng = Rng.create 11 in
  let n = 20_000 in
  let total = ref 0. in
  for _ = 1 to n do
    total := !total +. Rng.unit_float rng
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.01)

let test_gaussian_moments () =
  let rng = Rng.create 13 in
  let n = 20_000 in
  let samples = Array.init n (fun _ -> Rng.gaussian rng ~mean:3. ~std:2.) in
  let mean = Stats.mean samples in
  let std = Stats.std samples in
  Alcotest.(check bool) "mean near 3" true (abs_float (mean -. 3.) < 0.1);
  Alcotest.(check bool) "std near 2" true (abs_float (std -. 2.) < 0.1)

let test_exponential_mean () =
  let rng = Rng.create 17 in
  let n = 20_000 in
  let samples = Array.init n (fun _ -> Rng.exponential rng ~rate:2.) in
  Alcotest.(check bool) "mean near 1/rate" true (abs_float (Stats.mean samples -. 0.5) < 0.02)

let test_pareto_positive () =
  let rng = Rng.create 19 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "at least scale" true (Rng.pareto rng ~shape:2. ~scale:1.5 >= 1.5)
  done

let test_lognormal_positive () =
  let rng = Rng.create 23 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "positive" true (Rng.lognormal rng ~mu:0. ~sigma:1. > 0.)
  done

let prop_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let rng = Rng.create seed in
      let a = Array.of_list l in
      Rng.shuffle_in_place rng a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let prop_choose_member =
  QCheck.Test.make ~name:"choose returns a member" ~count:200
    QCheck.(pair small_int (list_of_size (Gen.int_range 1 20) small_int))
    (fun (seed, l) ->
      let rng = Rng.create seed in
      List.mem (Rng.choose rng (Array.of_list l)) l)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy does not advance" `Quick test_copy_does_not_advance;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "split order independence" `Quick test_split_order_independent;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int rejects bad bound" `Quick test_int_rejects_bad_bound;
    Alcotest.test_case "unit_float range" `Quick test_unit_float_range;
    Alcotest.test_case "uniform mean" `Quick test_uniform_mean;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "pareto support" `Quick test_pareto_positive;
    Alcotest.test_case "lognormal support" `Quick test_lognormal_positive;
    QCheck_alcotest.to_alcotest prop_shuffle_is_permutation;
    QCheck_alcotest.to_alcotest prop_choose_member;
  ]
