(* The fence-inference subsystem: event-graph extraction, critical
   cycles, placement candidates, verification/minimisation, and the
   library-wide acceptance sweep (every analyzable test gets a
   verified-minimal placement with minimality witnesses). *)

open Wmm_isa
open Wmm_model
open Wmm_litmus
open Wmm_analysis

let lib name = Option.get (Library.by_name name)

let graph_of name = Event_graph.extract (lib name).Test.program

(* ------------------------------------------------------------------ *)
(* Event graph                                                         *)
(* ------------------------------------------------------------------ *)

let test_extract_mp_addr () =
  (* MP+dmb+addr: the xor-self / add idiom must resolve the second
     load's address statically and carry the addr dependency. *)
  let g = graph_of "MP+dmb+addr" in
  Alcotest.(check int) "accesses" 4 (List.length g.Event_graph.accesses);
  let reads =
    List.filter (fun (a : Event_graph.access) -> not a.Event_graph.is_write)
      g.Event_graph.accesses
  in
  Alcotest.(check int) "two reads" 2 (List.length reads);
  let dependent_read =
    List.find
      (fun (a : Event_graph.access) -> a.Event_graph.tid = 1 && a.Event_graph.index > 0)
      reads
  in
  Alcotest.(check (option int)) "xor-self address resolved" (Some 0)
    dependent_read.Event_graph.loc;
  let reader_edge =
    List.find
      (fun (e : Event_graph.po_edge) ->
        e.Event_graph.src.Event_graph.tid = 1 && e.Event_graph.dst.Event_graph.tid = 1)
      g.Event_graph.edges
  in
  Alcotest.(check bool) "addr dependency tracked" true reader_edge.Event_graph.addr_dep;
  let writer_edge =
    List.find
      (fun (e : Event_graph.po_edge) -> e.Event_graph.src.Event_graph.tid = 0)
      g.Event_graph.edges
  in
  Alcotest.(check bool) "dmb recorded between writes" true
    (List.mem Instr.Dmb_ish writer_edge.Event_graph.fences)

let test_extract_exclusives () =
  let g = graph_of "CAS+both" in
  let exclusives =
    List.filter (fun (a : Event_graph.access) -> a.Event_graph.exclusive)
      g.Event_graph.accesses
  in
  Alcotest.(check bool) "exclusive accesses extracted" true (List.length exclusives >= 4)

let test_conflict_and_kind () =
  let g = graph_of "SB" in
  let edges = g.Event_graph.edges in
  Alcotest.(check int) "one po edge per SB thread" 2 (List.length edges);
  List.iter
    (fun e ->
      Alcotest.(check bool) "SB po edges are store->load" true
        (Event_graph.edge_kind e = Wmm_platform.Barrier.Store_load))
    edges

(* ------------------------------------------------------------------ *)
(* Critical cycles and the preserved predicate                         *)
(* ------------------------------------------------------------------ *)

let test_preserved_tso () =
  let sb = graph_of "SB" and mp = graph_of "MP" in
  List.iter
    (fun (e : Event_graph.po_edge) ->
      Alcotest.(check bool) "TSO relaxes store->load" false (Critical.preserved Axiomatic.Tso e))
    sb.Event_graph.edges;
  List.iter
    (fun (e : Event_graph.po_edge) ->
      Alcotest.(check bool) "TSO preserves MP's edges" true
        (Critical.preserved Axiomatic.Tso e))
    mp.Event_graph.edges

let test_preserved_acq_rel () =
  let g = graph_of "MP+rel+acq" in
  List.iter
    (fun (e : Event_graph.po_edge) ->
      Alcotest.(check bool) "release/acquire preserve MP edges on ARM" true
        (Critical.preserved Axiomatic.Arm e))
    g.Event_graph.edges

let test_critical_cycles () =
  let sb = graph_of "SB" in
  let cycles = Critical.critical_cycles Axiomatic.Arm sb in
  Alcotest.(check int) "SB: one critical cycle on ARM" 1 (List.length cycles);
  Alcotest.(check int) "SB: two delays" 2
    (List.length (Critical.delay_edges Axiomatic.Arm sb));
  Alcotest.(check int) "SB: no critical cycle under SC" 0
    (List.length (Critical.critical_cycles Axiomatic.Sc sb));
  (* Same-location accesses are ordered by coherence in every model:
     a coherence test yields no critical cycle. *)
  let coww =
    Event_graph.extract
      (Program.make ~name:"coww" ~location_names:[| "x" |]
         [
           [| Test.str ~value:1 ~loc:0; Test.str ~value:2 ~loc:0 |];
           [| Test.ldr ~dst:1 ~loc:0; Test.ldr ~dst:2 ~loc:0 |];
         ])
  in
  Alcotest.(check int) "coherence: no critical cycles" 0
    (List.length (Critical.critical_cycles Axiomatic.Power coww))

(* ------------------------------------------------------------------ *)
(* Placement                                                           *)
(* ------------------------------------------------------------------ *)

let test_join_and_ladder () =
  Alcotest.(check bool) "ishld+ishst joins to ish" true
    (Placement.join Instr.Dmb_ishld Instr.Dmb_ishst = Instr.Dmb_ish);
  Alcotest.(check bool) "eieio+lwsync joins to lwsync" true
    (Placement.join Instr.Eieio Instr.Lwsync = Instr.Lwsync);
  Alcotest.(check bool) "sync joins anything power to sync" true
    (Placement.join Instr.Sync Instr.Eieio = Instr.Sync);
  Alcotest.(check (list bool)) "ARM store->load ladder is the full fence"
    [ true ]
    (List.map (fun b -> b = Instr.Dmb_ish)
       (Placement.ladder Axiomatic.Arm Wmm_platform.Barrier.Store_load));
  Alcotest.(check int) "POWER store->store ladder has three rungs" 3
    (List.length (Placement.ladder Axiomatic.Power Wmm_platform.Barrier.Store_store))

let test_apply () =
  let t = lib "SB" in
  let strategy =
    [
      { Placement.tid = 0; at = 1; barrier = Instr.Dmb_ish };
      { Placement.tid = 1; at = 1; barrier = Instr.Dmb_ish };
    ]
  in
  let fenced = Placement.apply t.Test.program strategy in
  Alcotest.(check int) "two instructions added" 6 (Program.instruction_count fenced);
  Array.iter
    (fun thread ->
      Alcotest.(check bool) "fence sits between the accesses" true
        (thread.(1) = Instr.Barrier Instr.Dmb_ish))
    fenced.Program.threads;
  Alcotest.(check string) "describe" "P0+dmb ish@1 P1+dmb ish@1"
    (Placement.describe strategy)

(* ------------------------------------------------------------------ *)
(* End-to-end inference                                                *)
(* ------------------------------------------------------------------ *)

let engine () = Wmm_engine.Engine.create ~jobs:0 ()

let analyze ?(with_cost = false) arch name =
  let rows = Infer.analyze_all ~with_cost ~engine:(engine ()) ~arch [ lib name ] in
  (List.hd rows).Infer.status

let inferred = function
  | Infer.Inferred inf -> inf
  | s -> Alcotest.failf "expected an inferred placement, got %s" (Infer.status_string s)

let check_minimal name arch expected =
  let inf = inferred (analyze arch name) in
  Alcotest.(check string)
    (Printf.sprintf "%s minimal placement on %s" name (Arch.name arch))
    expected
    (Placement.describe inf.Infer.minimal);
  Alcotest.(check bool) (name ^ " minimality witnessed") true inf.Infer.witnesses_ok

let test_sb_placements () =
  check_minimal "SB" Arch.Armv8 "P0+dmb ish@1 P1+dmb ish@1";
  check_minimal "SB" Arch.Power7 "P0+sync@1 P1+sync@1"

let test_mp_placements () =
  check_minimal "MP" Arch.Armv8 "P0+dmb ishst@1 P1+dmb ishld@1";
  check_minimal "LB" Arch.Armv8 "P0+dmb ishld@1 P1+dmb ishld@1";
  (* One-sided fencing: the writer's dmb is already in the program,
     so only the reader side needs a fence. *)
  check_minimal "MP+dmb" Arch.Armv8 "P1+dmb ishld@1"

let test_iriw_power_escalation () =
  (* The static rules would accept lwsync on both readers, but POWER
     is not multi-copy atomic: verification rejects the lwsync
     candidates and the solver escalates to sync. *)
  let inf = inferred (analyze Arch.Power7 "IRIW") in
  Alcotest.(check bool) "readers end up with sync" true
    (List.for_all (fun s -> s.Placement.barrier = Instr.Sync) inf.Infer.minimal);
  Alcotest.(check bool) "lwsync candidates reported insufficient" true
    (inf.Infer.insufficient >= 1);
  Alcotest.(check bool) "minimality witnessed" true inf.Infer.witnesses_ok;
  (* ARMv8 is multi-copy atomic: the cheap read fences do suffice. *)
  let arm = inferred (analyze Arch.Armv8 "IRIW") in
  Alcotest.(check bool) "ARM needs only read fences" true
    (List.for_all (fun s -> s.Placement.barrier = Instr.Dmb_ishld) arm.Infer.minimal)

let test_statuses () =
  (match analyze Arch.Armv8 "SB+dmbs" with
  | Infer.Already_forbidden -> ()
  | s -> Alcotest.failf "SB+dmbs should already be forbidden, got %s" (Infer.status_string s));
  match analyze Arch.Armv8 "CAS+one" with
  | Infer.Beyond_fences -> ()
  | s -> Alcotest.failf "CAS+one is SC-allowed, got %s" (Infer.status_string s)

let test_costing () =
  let inf = inferred (analyze ~with_cost:true Arch.Armv8 "SB") in
  match inf.Infer.ranked with
  | [] -> Alcotest.fail "cost ranking empty"
  | c :: _ ->
      Alcotest.(check bool) "micro cost positive" true (c.Costing.micro_ns > 0.);
      Alcotest.(check bool) "relative performance sensible" true
        (c.Costing.relative > 0. && c.Costing.relative <= 2.);
      Alcotest.(check bool) "sensitivity fit available" true
        (Wmm_core.Sensitivity.available c.Costing.fit);
      Alcotest.(check bool) "inferred cost finite" true
        (Float.is_finite c.Costing.inferred_ns)

let test_render () =
  let e = engine () in
  let rows =
    Infer.analyze_all ~with_cost:false ~engine:e ~arch:Arch.Armv8
      [ lib "SB"; lib "SB+dmbs"; lib "CAS+one" ]
  in
  let report = Infer.render Arch.Armv8 rows in
  List.iter
    (fun needle ->
      let n = String.length needle and h = String.length report in
      let rec go i = i + n <= h && (String.sub report i n = needle || go (i + 1)) in
      if not (go 0) then Alcotest.failf "report missing %S:\n%s" needle report)
    [ "verified-minimal"; "already-forbidden"; "beyond-fences"; "minimality" ]

(* ------------------------------------------------------------------ *)
(* Acceptance sweep: every library test with a model-forbidden outcome
   on ARMv8 and POWER gets a verified-minimal placement, witnessed.    *)
(* ------------------------------------------------------------------ *)

let test_acceptance_sweep () =
  let e = engine () in
  List.iter
    (fun arch ->
      let rows = Infer.analyze_all ~with_cost:false ~engine:e ~arch Library.all in
      List.iter
        (fun (r : Infer.row) ->
          match r.Infer.status with
          | Infer.Unfixed msg ->
              Alcotest.failf "%s on %s: no verified placement (%s)" r.Infer.test.Test.name
                (Arch.name arch) msg
          | Infer.Inferred inf ->
              Alcotest.(check bool)
                (Printf.sprintf "%s on %s: minimality witnessed" r.Infer.test.Test.name
                   (Arch.name arch))
                true inf.Infer.witnesses_ok;
              Alcotest.(check bool)
                (Printf.sprintf "%s on %s: non-empty placement" r.Infer.test.Test.name
                   (Arch.name arch))
                true (inf.Infer.minimal <> [])
          | Infer.Already_forbidden | Infer.Beyond_fences -> ())
        rows)
    [ Arch.Armv8; Arch.Power7 ]

let suite =
  [
    Alcotest.test_case "event graph: MP+dmb+addr" `Quick test_extract_mp_addr;
    Alcotest.test_case "event graph: exclusives" `Quick test_extract_exclusives;
    Alcotest.test_case "event graph: SB kinds" `Quick test_conflict_and_kind;
    Alcotest.test_case "preserved: TSO" `Quick test_preserved_tso;
    Alcotest.test_case "preserved: acquire/release" `Quick test_preserved_acq_rel;
    Alcotest.test_case "critical cycles" `Quick test_critical_cycles;
    Alcotest.test_case "placement: join and ladders" `Quick test_join_and_ladder;
    Alcotest.test_case "placement: apply" `Quick test_apply;
    Alcotest.test_case "infer: SB" `Quick test_sb_placements;
    Alcotest.test_case "infer: MP family" `Quick test_mp_placements;
    Alcotest.test_case "infer: IRIW escalation" `Quick test_iriw_power_escalation;
    Alcotest.test_case "infer: statuses" `Quick test_statuses;
    Alcotest.test_case "infer: cost ranking" `Quick test_costing;
    Alcotest.test_case "infer: report rendering" `Quick test_render;
    Alcotest.test_case "acceptance sweep (full library)" `Slow test_acceptance_sweep;
  ]
