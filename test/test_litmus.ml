open Wmm_model
open Wmm_machine
open Wmm_litmus

let config_for model =
  match model with
  | Axiomatic.Sc -> Relaxed.sc_config
  | Axiomatic.Tso -> Relaxed.tso_config
  | Axiomatic.Arm | Axiomatic.Power -> Relaxed.relaxed_config
  | Axiomatic.Rc11 -> Relaxed.sc_config

let test_library_programs_valid () =
  List.iter
    (fun (t : Test.t) ->
      match Wmm_isa.Program.validate t.Test.program with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)
    Library.all

let test_library_nonempty_battery () =
  Alcotest.(check bool) "at least 25 tests" true (List.length Library.all >= 25);
  Alcotest.(check bool) "coherence + common + atomics + arm + power partition" true
    (List.length Library.all
    = List.length Library.coherence + List.length Library.common
      + List.length Library.atomics + List.length Library.arm + List.length Library.power)

let test_for_model_filters () =
  List.iter
    (fun t ->
      Alcotest.(check bool) "has POWER annotation" true
        (Test.expected_under t Axiomatic.Power <> None))
    (Library.for_model Axiomatic.Power)

let test_condition_matching () =
  Alcotest.(check bool) "matches" true
    (Test.condition_matches [ ((0, 1), 5) ] [ ((0, 1), 5); ((0, 2), 0) ]);
  Alcotest.(check bool) "value mismatch" false
    (Test.condition_matches [ ((0, 1), 5) ] [ ((0, 1), 4) ]);
  Alcotest.(check bool) "missing register" false
    (Test.condition_matches [ ((1, 3), 1) ] [ ((0, 1), 1) ])

let test_random_runs_sound () =
  (* Random scheduling across the whole battery: cheap smoke that
     still exercises every test. *)
  List.iter
    (fun (t : Test.t) ->
      List.iter
        (fun model ->
          if Test.expected_under t model <> None then begin
            let v = Check.run_random ~iterations:300 model (config_for model) t in
            if not (Check.sound v) then Alcotest.failf "unsound: %s" (Check.describe v)
          end)
        Axiomatic.all_models)
    Library.all

let test_exhaustive_battery_sound () =
  (* The definitive check: exhaustive operational exploration never
     observes a model-forbidden outcome, and every annotation matches
     the model. *)
  List.iter
    (fun (t : Test.t) ->
      List.iter
        (fun model ->
          if Test.expected_under t model <> None then begin
            let v = Check.run_exhaustive model (config_for model) t in
            if not (Check.sound v) then Alcotest.failf "unsound: %s" (Check.describe v)
          end)
        Axiomatic.all_models)
    Library.all

let test_weak_outcomes_actually_observed () =
  (* The relaxed machine is not vacuous: the classic weak behaviours
     are genuinely exhibited. *)
  List.iter
    (fun name ->
      let t = Option.get (Library.by_name name) in
      let v = Check.run_exhaustive Axiomatic.Arm Relaxed.relaxed_config t in
      Alcotest.(check bool) (name ^ " observed") true v.Check.observed)
    [ "SB"; "MP"; "LB"; "S"; "R"; "2+2W"; "WRC"; "IRIW"; "MP+dmb"; "SB+lwsyncs" ]

let test_describe_format () =
  let t = Option.get (Library.by_name "SB") in
  let v = Check.run_random ~iterations:50 Axiomatic.Arm Relaxed.relaxed_config t in
  let s = Check.describe v in
  Alcotest.(check bool) "mentions test name" true
    (String.length s > 2 && String.sub s 0 2 = "SB")

let suite =
  [
    Alcotest.test_case "programs valid" `Quick test_library_programs_valid;
    Alcotest.test_case "battery size and partition" `Quick test_library_nonempty_battery;
    Alcotest.test_case "for_model filters" `Quick test_for_model_filters;
    Alcotest.test_case "condition matching" `Quick test_condition_matching;
    Alcotest.test_case "random battery sound" `Quick test_random_runs_sound;
    Alcotest.test_case "exhaustive battery sound" `Slow test_exhaustive_battery_sound;
    Alcotest.test_case "weak outcomes observed" `Slow test_weak_outcomes_actually_observed;
    Alcotest.test_case "describe format" `Quick test_describe_format;
  ]
