open Wmm_isa
open Wmm_model
open Wmm_machine
open Wmm_litmus

let mp_text =
  "AArch64 MP+dmb+addr\n\
   { x=0; y=0 }\n\
   P0           | P1             ;\n\
   str #1, &x   | ldr x1, &y     ;\n\
   dmb ish      | eor x3, x1, x1 ;\n\
   str #1, &y   | ldr x4, [x3]   ;\n\
   exists (1:x1=1 /\\ 1:x4=0)\n"

let parse_ok text =
  match Parse.parse text with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %s" e

let test_parse_mp () =
  let p = parse_ok mp_text in
  Alcotest.(check bool) "arch hint" true (p.Parse.arch_hint = Some Arch.Armv8);
  Alcotest.(check string) "name" "MP+dmb+addr" p.Parse.test.Test.name;
  Alcotest.(check int) "two threads" 2
    (Program.thread_count p.Parse.test.Test.program);
  Alcotest.(check int) "condition clauses" 2 (List.length p.Parse.test.Test.condition)

let test_parsed_verdict_matches_library () =
  (* The parsed MP+dmb+addr must agree with the hand-built library
     version under the ARM model. *)
  let p = parse_ok mp_text in
  Alcotest.(check bool) "forbidden on ARMv8" false
    (Check.axiomatic_allowed Axiomatic.Arm p.Parse.test);
  Alcotest.(check bool) "allowed on POWER? (no dmb there - still forbidden shape)" false
    (Check.axiomatic_allowed Axiomatic.Sc p.Parse.test)

let test_parse_memory_condition () =
  let text =
    "AArch64 coherence\n\
     { x=0 }\n\
     P0         ;\n\
     str #1, &x ;\n\
     str #2, &x ;\n\
     exists (x=1)\n"
  in
  let p = parse_ok text in
  Alcotest.(check int) "memory clause" 1 (List.length p.Parse.test.Test.mem_condition);
  Alcotest.(check bool) "CoWW forbidden everywhere" false
    (Check.axiomatic_allowed Axiomatic.Arm p.Parse.test)

let test_parse_power_syntax () =
  let text =
    "PPC MP+lwsync\n\
     { x=0; y=0 }\n\
     P0         | P1         ;\n\
     str #1, &x | ldr x1, &y ;\n\
     lwsync     | ldr x2, &x ;\n\
     str #1, &y | nop        ;\n\
     exists (1:x1=1 /\\ 1:x2=0)\n"
  in
  let p = parse_ok text in
  Alcotest.(check bool) "arch hint power" true (p.Parse.arch_hint = Some Arch.Power7);
  Alcotest.(check bool) "one-sided lwsync allowed" true
    (Check.axiomatic_allowed Axiomatic.Power p.Parse.test)

let test_comments_and_blanks () =
  let text =
    "AArch64 commented   % trailing\n\
     % a comment line\n\
     { x=0; y=0 }\n\n\
     str #1, &x | ldr x1, &y ;\n\
     ldr x2, &y | str #1, &y ;\n\
     exists (0:x2=1)\n"
  in
  let p = parse_ok text in
  Alcotest.(check int) "threads" 2 (Program.thread_count p.Parse.test.Test.program)

let test_parse_errors () =
  (match Parse.parse "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty should fail");
  (match Parse.parse "AArch64 bad\n{ x=0 }\nfrobnicate &x ;\nexists (x=0)\n" with
  | Error e ->
      Alcotest.(check bool) "mentions instruction" true
        (String.length e > 0)
  | Ok _ -> Alcotest.fail "bad instruction should fail");
  match Parse.parse "AArch64 ragged\n{ x=0 }\nnop | nop ;\nnop ;\nexists (x=0)\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ragged columns should fail"

let test_roundtrip_library () =
  (* Print a library test and parse it back: same axiomatic verdict
     and same reachable outcome count on the operational machine. *)
  List.iter
    (fun name ->
      let original = Option.get (Library.by_name name) in
      let arch =
        (* Pick the printing syntax matching the barriers used. *)
        if List.exists (fun (m, _) -> m = Axiomatic.Power) original.Test.expected then
          Arch.Power7
        else Arch.Armv8
      in
      let text = Parse.to_text ~arch original in
      match Parse.parse text with
      | Error e -> Alcotest.failf "%s roundtrip parse error: %s (text:\n%s)" name e text
      | Ok p ->
          List.iter
            (fun model ->
              Alcotest.(check bool)
                (Printf.sprintf "%s verdict under %s" name (Axiomatic.model_name model))
                (Check.axiomatic_allowed model original)
                (Check.axiomatic_allowed model p.Parse.test))
            [ Axiomatic.Sc; Axiomatic.Arm; Axiomatic.Power ];
          let outcomes t = List.length (Relaxed.enumerate Relaxed.relaxed_config t.Test.program) in
          Alcotest.(check int)
            (name ^ " operational outcome count")
            (outcomes original) (outcomes p.Parse.test))
    [ "SB"; "MP"; "MP+dmb+addr"; "SB+dmbs"; "MP+lwsync+addr"; "LB"; "2+2W"; "R" ]

(* ------------------------------------------------------------------ *)
(* Full-library round-trip: parse -> print -> parse over all 44 tests,
   plus the edge cases the analysis event-graph extractor relies on
   (exclusives and acquire/release annotations).                       *)
(* ------------------------------------------------------------------ *)

(* The POWER rendering of exclusives and acquire/release loads is a
   multi-instruction idiom (e.g. "stcx. ... ; mfcr ...") that the
   parser deliberately does not accept, so pick the printing syntax
   by the barriers the program actually uses: only genuinely
   POWER-fenced tests print as PPC. *)
let print_arch (t : Test.t) =
  let uses_power_barrier =
    Array.exists
      (fun thread ->
        Array.exists
          (function
            | Instr.Barrier b -> Instr.barrier_arch b = Arch.Power7 | _ -> false)
          thread)
      t.Test.program.Program.threads
  in
  if uses_power_barrier then Arch.Power7 else Arch.Armv8

let instr_category = function
  | Instr.Load _ -> "load"
  | Instr.Store _ -> "store"
  | Instr.Load_exclusive _ -> "load-exclusive"
  | Instr.Store_exclusive _ -> "store-exclusive"
  | Instr.Barrier b -> "barrier:" ^ Instr.barrier_mnemonic b
  | Instr.Mov _ -> "mov"
  | Instr.Op _ -> "op"
  | Instr.Cbnz _ | Instr.Cbz _ -> "branch"
  | Instr.Nop -> "nop"

let category_counts (p : Program.t) =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun thread ->
      Array.iter
        (fun i ->
          let c = instr_category i in
          Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c)))
        thread)
    p.Program.threads;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let test_roundtrip_full_library () =
  List.iter
    (fun (original : Test.t) ->
      let name = original.Test.name in
      let arch = print_arch original in
      let text1 = Parse.to_text ~arch original in
      match Parse.parse text1 with
      | Error e -> Alcotest.failf "%s roundtrip parse error: %s (text:\n%s)" name e text1
      | Ok p ->
          let reparsed = p.Parse.test in
          Alcotest.(check string) (name ^ " name survives") name reparsed.Test.name;
          Alcotest.(check int)
            (name ^ " thread count")
            (Program.thread_count original.Test.program)
            (Program.thread_count reparsed.Test.program);
          Alcotest.(check (list (pair string int)))
            (name ^ " instruction mix")
            (category_counts original.Test.program)
            (category_counts reparsed.Test.program);
          Alcotest.(check int)
            (name ^ " condition clauses")
            (List.length original.Test.condition)
            (List.length reparsed.Test.condition);
          Alcotest.(check int)
            (name ^ " memory clauses")
            (List.length original.Test.mem_condition)
            (List.length reparsed.Test.mem_condition);
          (* Print -> parse -> print must be a fixpoint: the second
             rendering is byte-identical to the first. *)
          let text2 = Parse.to_text ~arch reparsed in
          Alcotest.(check string) (name ^ " text fixpoint") text1 text2)
    Library.all

let find_instr p pred =
  Array.exists (fun thread -> Array.exists pred thread) p.Program.threads

let test_roundtrip_exclusives () =
  (* RMW exclusives survive the round trip with their annotations:
     the event-graph extractor keys on both. *)
  let text =
    "AArch64 cas-acqrel\n\
     { x=0 }\n\
     P0               | P1               ;\n\
     ldaxr x1, &x     | ldxr x1, &x      ;\n\
     stlxr x3, x2, &x | stxr x3, x2, &x  ;\n\
     exists (0:x3=0 /\\ 1:x3=0)\n"
  in
  let p = parse_ok text in
  let prog = p.Parse.test.Test.program in
  let is_acq_lx = function
    | Instr.Load_exclusive { order = Instr.Acquire; _ } -> true
    | _ -> false
  and is_rel_sx = function
    | Instr.Store_exclusive { order = Instr.Release; _ } -> true
    | _ -> false
  and is_plain_lx = function
    | Instr.Load_exclusive { order = Instr.Plain; _ } -> true
    | _ -> false
  and is_plain_sx = function
    | Instr.Store_exclusive { order = Instr.Plain; _ } -> true
    | _ -> false
  in
  Alcotest.(check bool) "ldaxr parsed" true (find_instr prog is_acq_lx);
  Alcotest.(check bool) "stlxr parsed" true (find_instr prog is_rel_sx);
  Alcotest.(check bool) "ldxr parsed" true (find_instr prog is_plain_lx);
  Alcotest.(check bool) "stxr parsed" true (find_instr prog is_plain_sx);
  let text2 = Parse.to_text ~arch:Arch.Armv8 p.Parse.test in
  let p2 = parse_ok text2 in
  Alcotest.(check string) "exclusives text fixpoint" text2
    (Parse.to_text ~arch:Arch.Armv8 p2.Parse.test)

let test_roundtrip_acquire_release () =
  (* MP+rel+acq: annotations must survive printing, and the reparsed
     test must keep the same verdict under every model. *)
  let original = Option.get (Library.by_name "MP+rel+acq") in
  let text = Parse.to_text ~arch:Arch.Armv8 original in
  let p = parse_ok text in
  let prog = p.Parse.test.Test.program in
  let is_stlr = function
    | Instr.Store { order = Instr.Release; _ } -> true
    | _ -> false
  and is_ldar = function
    | Instr.Load { order = Instr.Acquire; _ } -> true
    | _ -> false
  in
  Alcotest.(check bool) "stlr survives" true (find_instr prog is_stlr);
  Alcotest.(check bool) "ldar survives" true (find_instr prog is_ldar);
  List.iter
    (fun model ->
      Alcotest.(check bool)
        ("MP+rel+acq verdict under " ^ Axiomatic.model_name model)
        (Check.axiomatic_allowed model original)
        (Check.axiomatic_allowed model p.Parse.test))
    [ Axiomatic.Sc; Axiomatic.Tso; Axiomatic.Arm ]

let suite =
  [
    Alcotest.test_case "parse MP" `Quick test_parse_mp;
    Alcotest.test_case "parsed verdicts" `Quick test_parsed_verdict_matches_library;
    Alcotest.test_case "memory conditions" `Quick test_parse_memory_condition;
    Alcotest.test_case "POWER syntax" `Quick test_parse_power_syntax;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "library roundtrip" `Quick test_roundtrip_library;
    Alcotest.test_case "full-library roundtrip" `Quick test_roundtrip_full_library;
    Alcotest.test_case "exclusives roundtrip" `Quick test_roundtrip_exclusives;
    Alcotest.test_case "acquire/release roundtrip" `Quick test_roundtrip_acquire_release;
  ]
