(* The litmus synthesizer: family size and determinism, recovery of
   every hand-written library shape (by canonical form, with agreeing
   verdicts), name uniqueness against the library, printer round-trips
   and the golden verdict table for the size-4 battery. *)

open Wmm_isa
open Wmm_model
open Wmm_litmus
open Wmm_synth

let archs = [ Arch.Armv8; Arch.Power7 ]

(* Families used by several tests; generation is cheap but not free,
   so share one instance. *)
let default_family = lazy (List.map (fun a -> (a, Synth.generate a)) archs)
let bound4_family = lazy (List.map (fun a -> (a, Synth.generate ~max_edges:4 a)) archs)

let family ~bound4 arch =
  List.assoc arch (Lazy.force (if bound4 then bound4_family else default_family))

let test_family_size () =
  List.iter
    (fun arch ->
      let n = List.length (family ~bound4:false arch) in
      Alcotest.(check bool)
        (Printf.sprintf "%s family has >= 500 tests (got %d)" (Arch.name arch) n)
        true (n >= 500))
    archs

let test_deterministic () =
  List.iter
    (fun arch ->
      let names gens = List.map (fun g -> g.Synth.g_test.Test.name) gens in
      Alcotest.(check (list string))
        (Arch.name arch ^ " generation is deterministic")
        (names (family ~bound4:false arch))
        (names (Synth.generate arch)))
    archs

let test_distinct_canons () =
  List.iter
    (fun arch ->
      let fam = family ~bound4:false arch in
      let canons = List.sort_uniq compare (List.map (fun g -> g.Synth.g_canon) fam) in
      Alcotest.(check int)
        (Arch.name arch ^ " canonical forms are pairwise distinct")
        (List.length fam) (List.length canons))
    archs

let test_library_coverage () =
  List.iter
    (fun (lt : Test.t) ->
      let arch = if List.memq lt Library.power then Arch.Power7 else Arch.Armv8 in
      match Synth.covers (family ~bound4:false arch) lt with
      | None -> Alcotest.failf "library test %s not covered by the family" lt.Test.name
      | Some g ->
          List.iter
            (fun (model, expect) ->
              let got = Check.axiomatic_allowed model g.Synth.g_test in
              Alcotest.(check bool)
                (Printf.sprintf "%s verdict under %s (via %s)" lt.Test.name
                   (Axiomatic.model_name model) g.Synth.g_test.Test.name)
                expect got)
            lt.Test.expected)
    Library.all

let test_names_unique () =
  List.iter
    (fun arch ->
      let fam = family ~bound4:false arch in
      let names = List.map (fun g -> g.Synth.g_test.Test.name) fam in
      Alcotest.(check int)
        (Arch.name arch ^ " generated names are unique")
        (List.length names)
        (List.length (List.sort_uniq compare names));
      (* A generated test may share a library name only when it is the
         library test up to isomorphism. *)
      List.iter
        (fun g ->
          match Library.by_name g.Synth.g_test.Test.name with
          | None -> ()
          | Some lt ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: generated test named after the library one is \
                                 isomorphic to it"
                   lt.Test.name)
                true
                (Canon.equal g.Synth.g_test lt))
        fam)
    archs

let test_library_names_unique () =
  let names = List.map (fun (t : Test.t) -> t.Test.name) Library.all in
  Alcotest.(check int) "library names are unique" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun (t : Test.t) ->
      match Library.by_name t.Test.name with
      | Some t' -> Alcotest.(check bool) ("by_name finds " ^ t.Test.name) true (t == t')
      | None -> Alcotest.failf "by_name misses %s" t.Test.name)
    Library.all

let test_roundtrip () =
  List.iter
    (fun arch ->
      List.iter
        (fun g ->
          let t = g.Synth.g_test in
          let text = Parse.to_text ~arch t in
          match Parse.parse text with
          | Error msg -> Alcotest.failf "%s does not reparse: %s" t.Test.name msg
          | Ok parsed ->
              Alcotest.(check bool)
                (t.Test.name ^ " round-trips through the printer up to isomorphism")
                true
                (Canon.equal t parsed.Parse.test))
        (family ~bound4:true arch))
    archs

(* The golden table: every bound-4 test's verdict under each of the
   architecture's check models.  Regenerate with
   `dune exec test/gen_synth_golden.exe > test/data/synth_golden.txt`
   after a deliberate generator or model change. *)
let golden_table () = Synth.verdict_table ~max_edges:4 archs

let test_golden () =
  (* `dune runtest` runs in test/; `dune exec test/test_main.exe` in
     the project root. *)
  let path =
    if Sys.file_exists "data/synth_golden.txt" then "data/synth_golden.txt"
    else "test/data/synth_golden.txt"
  in
  let ic = open_in path in
  let n = in_channel_length ic in
  let expected = really_input_string ic n in
  close_in ic;
  let got = golden_table () in
  if got <> expected then begin
    (* Locate the first differing line so the failure is actionable. *)
    let gl = String.split_on_char '\n' got
    and el = String.split_on_char '\n' expected in
    let rec first_diff i = function
      | g :: gs, e :: es -> if g = e then first_diff (i + 1) (gs, es) else (i, g, e)
      | g :: _, [] -> (i, g, "<end of golden file>")
      | [], e :: _ -> (i, "<end of generated table>", e)
      | [], [] -> (i, "", "")
    in
    let line, g, e = first_diff 1 (gl, el) in
    Alcotest.failf
      "golden verdict table differs at line %d:\n  generated: %s\n  golden:    %s" line
      g e
  end

let suite =
  [
    Alcotest.test_case "family size (>= 500 per arch)" `Quick test_family_size;
    Alcotest.test_case "generation is deterministic" `Quick test_deterministic;
    Alcotest.test_case "canonical forms distinct" `Quick test_distinct_canons;
    Alcotest.test_case "library shapes covered, verdicts agree" `Quick
      test_library_coverage;
    Alcotest.test_case "generated names unique vs library" `Quick test_names_unique;
    Alcotest.test_case "library names unique, by_name total" `Quick
      test_library_names_unique;
    Alcotest.test_case "printer round-trip (bound-4 battery)" `Quick test_roundtrip;
    Alcotest.test_case "golden verdict table (bound-4 battery)" `Quick test_golden;
  ]
