(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (sections 4.1-4.3.1) and then times the
   library's core operations with Bechamel.

   Usage: main.exe [SECTION ...] [--jobs N] [--no-cache] [--telemetry FILE]
                   [--inject-faults SPEC] [--retries N] [--resume RUN-ID]
                   [--robust-fit]

   With section names (e.g. `main.exe fig5 rankings`) only those
   sections run; without any, the full suite runs.  --jobs fans the
   heavyweight sweeps out across worker domains through wmm_engine;
   the result cache (under _wmm_cache/) makes re-runs incremental
   unless --no-cache is given.  Completed tasks are journaled under
   _wmm_cache/journal/, so an interrupted run resumes where it left
   off when rerun identically (or explicitly via --resume).

   Set WMM_FAST=1 to run a reduced version (fewer samples, smaller
   sweeps) in under a minute. *)

open Wmm_experiments

(* Snapshot the candidate-search counters into the run's telemetry so
   the JSON dump records how much exploration the run performed. *)
let record_exploration engine =
  let s = Wmm_model.Enumerate.global_stats () in
  Wmm_engine.Engine.set_exploration engine
    {
      Wmm_engine.Telemetry.explored = s.Wmm_model.Enumerate.generated;
      pruned = s.Wmm_model.Enumerate.pruned;
      well_formed = s.Wmm_model.Enumerate.well_formed;
      consistent = s.Wmm_model.Enumerate.consistent;
      graph_executions = s.Wmm_model.Enumerate.graph_executions;
      revisits = s.Wmm_model.Enumerate.revisits;
      symmetry_skips = s.Wmm_model.Enumerate.symmetry_skips;
      cutover_small = s.Wmm_model.Enumerate.cutover_small;
      explore_wall_s = s.Wmm_model.Enumerate.wall_s;
    }

let section name f =
  let t0 = Unix.gettimeofday () in
  print_endline (f ());
  Printf.printf "[section %s: %.1fs]\n\n%!" name (Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Litmus summary: the semantic layer's health, printed first because
   the performance results are only meaningful if the fencing
   strategies are semantically correct.                                *)
(* ------------------------------------------------------------------ *)

let litmus_summary () =
  let open Wmm_litmus in
  let open Wmm_model in
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer (Exp_common.header "Litmus battery (semantic substrate)");
  Buffer.add_char buffer '\n';
  let sound = ref 0 and total = ref 0 in
  List.iter
    (fun test ->
      List.iter
        (fun model ->
          match Test.expected_under test model with
          | None -> ()
          | Some _ ->
              let config =
                match model with
                | Axiomatic.Sc -> Wmm_machine.Relaxed.sc_config
                | Axiomatic.Tso -> Wmm_machine.Relaxed.tso_config
                | Axiomatic.Arm | Axiomatic.Power -> Wmm_machine.Relaxed.relaxed_config
                | Axiomatic.Rc11 -> Wmm_machine.Relaxed.sc_config
              in
              let v =
                if Exp_common.fast () then Check.run_random ~iterations:200 model config test
                else Check.run_exhaustive model config test
              in
              incr total;
              if Check.sound v then incr sound
              else Buffer.add_string buffer (Check.describe v ^ "\n"))
        Axiomatic.all_models)
    Library.all;
  Buffer.add_string buffer
    (Printf.sprintf "%d/%d test/model verdicts sound (operational vs axiomatic)" !sound
       !total);
  Buffer.contents buffer

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: one per experiment family, timing the
   computational kernel that regenerates it.                           *)
(* ------------------------------------------------------------------ *)

let bechamel_section () =
  let open Bechamel in
  let open Toolkit in
  let mp = Option.get (Wmm_litmus.Library.by_name "MP") in
  let sb = Option.get (Wmm_litmus.Library.by_name "SB") in
  let spark_streams =
    Wmm_workload.Generate.streams ~units_override:40 Wmm_workload.Dacapo.spark
      (Exp_common.jvm_nop_base Wmm_isa.Arch.Armv8)
      ~seed:3
  in
  let xs = Array.init 12 (fun i -> float_of_int (1 lsl i)) in
  let ys = Array.map (fun a -> Wmm_core.Sensitivity.performance ~k:0.003 ~a) xs in
  let tests =
    [
      Test.make ~name:"fig1/4: sensitivity curve fit"
        (Staged.stage (fun () -> Wmm_core.Sensitivity.fit_k ~xs ~ys));
      Test.make ~name:"fig5/6/9: simulator run (spark slice, 8 cores)"
        (Staged.stage (fun () ->
             Wmm_machine.Perf.run
               (Wmm_machine.Perf.config ~seed:5 Wmm_isa.Arch.Armv8)
               spark_streams));
      Test.make ~name:"litmus: axiomatic enumeration (MP)"
        (Staged.stage (fun () ->
             Wmm_model.Enumerate.allowed_outcomes Wmm_model.Axiomatic.Arm
               mp.Wmm_litmus.Test.program));
      Test.make ~name:"litmus: operational exhaustive (SB)"
        (Staged.stage (fun () ->
             Wmm_machine.Relaxed.enumerate Wmm_machine.Relaxed.relaxed_config
               sb.Wmm_litmus.Test.program));
      Test.make ~name:"fig2-4: cost function calibration"
        (Staged.stage (fun () ->
             Wmm_costfn.Cost_function.calibrate Wmm_isa.Arch.Armv8 [ 1; 16; 256; 1024 ]));
      Test.make ~name:"T2/T6: microbenchmark of a fence sequence"
        (Staged.stage (fun () ->
             Wmm_machine.Perf.sequence_cost_ns ~repetitions:200
               (Wmm_machine.Timing.for_arch Wmm_isa.Arch.Power7)
               [ Wmm_machine.Uop.Fence_full ]));
    ]
  in
  print_endline (Exp_common.header "Bechamel: core operation timings");
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let instances = Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| "run" |])
          (Instance.monotonic_clock :> Measure.witness)
          results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-48s %12.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-48s (no estimate)\n" name)
        analysis)
    tests;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Fence inference: the analysis layer closes the loop - placements
   are derived from program structure, verified against the axiomatic
   models, and priced with the paper's sensitivity methodology.       *)
(* ------------------------------------------------------------------ *)

let analysis_summary ~engine () =
  let open Wmm_litmus in
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer
    (Exp_common.header "Fence inference (critical cycles -> verified-minimal placements)");
  Buffer.add_char buffer '\n';
  let names =
    if Exp_common.fast () then [ "SB"; "MP"; "IRIW" ]
    else
      [
        "SB"; "MP"; "LB"; "S"; "R"; "2+2W"; "WRC"; "IRIW"; "MP+dmb"; "SB+dmbs"; "CAS+one";
      ]
  in
  let tests = List.filter_map Library.by_name names in
  List.iter
    (fun arch ->
      let rows = Wmm_analysis.Infer.analyze_all ~engine ~arch tests in
      Buffer.add_string buffer
        (Wmm_analysis.Infer.render ~detail:(not (Exp_common.fast ())) arch rows);
      Buffer.add_char buffer '\n')
    [ Wmm_isa.Arch.Armv8; Wmm_isa.Arch.Power7 ];
  Buffer.contents buffer

(* ------------------------------------------------------------------ *)
(* Differential conformance: the synthesized battery cross-checks the
   semantic layers against each other before anything is measured.    *)
(* ------------------------------------------------------------------ *)

let conform_summary ~engine () =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer
    (Exp_common.header "Conformance (synthesized battery, all semantic layers)");
  Buffer.add_char buffer '\n';
  let max_edges = if Exp_common.fast () then 3 else 4 in
  let limit = if Exp_common.fast () then 60 else 0 in
  let infer_limit = if Exp_common.fast () then 8 else 32 in
  List.iter
    (fun arch ->
      let family = Wmm_synth.Synth.generate ~max_edges arch in
      let tests =
        List.filteri
          (fun i _ -> limit = 0 || i < limit)
          (List.map (fun g -> g.Wmm_synth.Synth.g_test) family)
      in
      let report =
        Wmm_synth.Conform.run
          ~config:
            {
              Wmm_synth.Conform.default_config with
              infer_limit;
              explorer = Wmm_model.Enumerate.current_default_engine ();
            }
          ~engine ~arch tests
      in
      Buffer.add_string buffer (Wmm_synth.Conform.render report);
      Buffer.add_char buffer '\n')
    [ Wmm_isa.Arch.Armv8; Wmm_isa.Arch.Power7 ];
  Buffer.contents buffer

(* ------------------------------------------------------------------ *)
(* Language tier: compilation containment plus the lock-suite          *)
(* fencing-sensitivity ranking.                                        *)
(* ------------------------------------------------------------------ *)

let lang_summary ~engine () =
  let open Wmm_lang in
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer
    (Exp_common.header "Language tier (RC11, compilation schemes, lock suite)");
  Buffer.add_char buffer '\n';
  let battery =
    if Exp_common.fast () then
      List.map Locks.test_of Locks.all
      @ List.filter_map
          (fun n -> Option.map C11.lift_test (Wmm_litmus.Library.by_name n))
          [ "SB"; "MP"; "LB"; "IRIW"; "MP+rel+acq"; "SB+dmbs" ]
    else
      List.map C11.lift_test Wmm_litmus.Library.all @ List.map Locks.test_of Locks.all
  in
  let report = Contain.run ~engine battery in
  Buffer.add_string buffer (Contain.render report);
  Buffer.add_char buffer '\n';
  let locks = if Exp_common.fast () then [ Locks.dekker; Locks.cas_lock ] else Locks.all in
  let rows = Rank.run ~locks ~engine () in
  Buffer.add_string buffer (Rank.render rows);
  Buffer.contents buffer

(* ------------------------------------------------------------------ *)
(* Command line: optional section filter plus engine flags.            *)
(* ------------------------------------------------------------------ *)

type options = {
  sections : string list;  (* empty = all *)
  jobs : int;
  use_cache : bool;
  telemetry_out : string option;
  faults : Wmm_engine.Fault.t;
  retries : int;
  resume : string option;
  robust : bool;
  explorer : Wmm_model.Enumerate.engine_kind;
}

let usage () =
  prerr_endline
    "usage: main.exe [SECTION ...] [--jobs N] [--no-cache] [--telemetry FILE]";
  prerr_endline
    "                [--inject-faults SPEC] [--retries N] [--resume RUN-ID] [--robust-fit]";
  prerr_endline
    "                [--engine pruned|graph|reference|auto]  (exploration engine; default auto)";
  prerr_endline
    "--jobs N: worker domains (0 = auto-detect via Domain.recommended_domain_count;";
  prerr_endline "          1 = sequential, the default)";
  prerr_endline "sections: litmus analysis conform lang fig1 fig2_3 fig4 fig5 fig6";
  prerr_endline "          jvm_tables rankings rbd counters optimizer bechamel";
  exit 2

let parse_options () =
  let rec go opts = function
    | [] -> { opts with sections = List.rev opts.sections }
    | ("--jobs" | "-j") :: n :: rest -> (
        match int_of_string_opt n with
        | Some jobs -> go { opts with jobs } rest
        | None -> usage ())
    | "--no-cache" :: rest -> go { opts with use_cache = false } rest
    | "--telemetry" :: file :: rest -> go { opts with telemetry_out = Some file } rest
    | "--inject-faults" :: spec :: rest -> (
        match Wmm_engine.Fault.parse spec with
        | Ok faults -> go { opts with faults } rest
        | Error msg ->
            Printf.eprintf "--inject-faults: %s\n" msg;
            usage ())
    | "--retries" :: n :: rest -> (
        match int_of_string_opt n with
        | Some retries when retries >= 0 -> go { opts with retries } rest
        | _ -> usage ())
    | "--resume" :: id :: rest -> go { opts with resume = Some id } rest
    | "--robust-fit" :: rest -> go { opts with robust = true } rest
    | "--engine" :: name :: rest -> (
        match Wmm_model.Enumerate.engine_of_string name with
        | Some explorer -> go { opts with explorer } rest
        | None ->
            Printf.eprintf "--engine: unknown engine %S\n" name;
            usage ())
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
    | name :: rest -> go { opts with sections = name :: opts.sections } rest
  in
  go
    {
      sections = [];
      jobs = 1;
      use_cache = true;
      telemetry_out = None;
      faults = Wmm_engine.Fault.none;
      retries = 2;
      resume = None;
      robust = false;
      explorer = Wmm_model.Enumerate.Auto;
    }
    (List.tl (Array.to_list Sys.argv))

let () =
  let opts = parse_options () in
  Wmm_model.Enumerate.set_default_engine opts.explorer;
  Wmm_engine.Fault.set_ambient opts.faults;
  let robust = opts.robust in
  let cache =
    if opts.use_cache then Wmm_engine.Cache.create () else Wmm_engine.Cache.disabled
  in
  let journal =
    let run_id =
      match opts.resume with
      | Some id -> Some id
      | None when not opts.use_cache -> None
      | None ->
          Some
            (Wmm_engine.Journal.derived_run_id ~tag:"bench"
               [
                 String.concat "," opts.sections;
                 Wmm_engine.Cache.code_version ();
                 (if Exp_common.fast () then "fast" else "full");
                 Wmm_engine.Fault.fingerprint opts.faults;
                 string_of_bool robust;
               ])
    in
    Option.map
      (fun run_id ->
        let j = Wmm_engine.Journal.open_ ~run_id () in
        Printf.eprintf "journal: run id %s (%d completed tasks on file)\n%!" run_id
          (Wmm_engine.Journal.loaded j);
        j)
      run_id
  in
  let engine =
    Wmm_engine.Engine.create ~jobs:opts.jobs ~cache ~retries:opts.retries
      ~faults:opts.faults ?journal ()
  in
  let all_sections =
    [
      ("litmus", fun () -> section "litmus" litmus_summary);
      ("analysis", fun () -> section "analysis" (analysis_summary ~engine));
      ("conform", fun () -> section "conform" (conform_summary ~engine));
      ("lang", fun () -> section "lang" (lang_summary ~engine));
      ("fig1", fun () -> section "fig1" Fig1.report);
      ("fig2_3", fun () -> section "fig2_3" Fig2_3.report);
      ("fig4", fun () -> section "fig4" Fig4.report);
      ("fig5", fun () -> section "fig5" (Fig5.report ~engine ~robust));
      ("fig6", fun () -> section "fig6" (Fig6.report ~engine ~robust));
      ("jvm_tables", fun () -> section "jvm_tables" Jvm_tables.report);
      ("rankings", fun () -> section "rankings" (Rankings.report ~engine ~robust));
      ("rbd", fun () -> section "rbd" (Rbd.report ~engine ~robust));
      ("counters", fun () -> section "counters" Counters.report);
      ("optimizer", fun () -> section "optimizer" Optimizer_exp.report);
      ("bechamel", bechamel_section);
    ]
  in
  let selected =
    match opts.sections with
    | [] -> all_sections
    | names ->
        List.iter
          (fun name ->
            if not (List.mem_assoc name all_sections) then begin
              Printf.eprintf "unknown section %S; valid sections: %s\n" name
                (String.concat " " (List.map fst all_sections));
              usage ()
            end)
          names;
        List.filter (fun (name, _) -> List.mem name names) all_sections
  in
  let t0 = Unix.gettimeofday () in
  Printf.printf "WMM-Bench: reproducing 'Benchmarking Weak Memory Models' (PPoPP 2016)\n";
  Printf.printf "mode: %s | jobs: %d | cache: %s\n\n"
    (if Exp_common.fast () then "FAST (WMM_FAST set)" else "full")
    (Wmm_engine.Engine.jobs engine)
    (if opts.use_cache then Wmm_engine.Cache.default_dir else "off");
  List.iter (fun (_, run) -> run ()) selected;
  record_exploration engine;
  print_endline (Wmm_engine.Engine.render_summary engine);
  Option.iter
    (fun path ->
      try Wmm_engine.Engine.write_telemetry engine path
      with Sys_error msg -> Printf.eprintf "warning: cannot write telemetry: %s\n" msg)
    opts.telemetry_out;
  Printf.printf "total: %.1fs\n" (Unix.gettimeofday () -. t0)
