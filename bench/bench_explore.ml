(* Perf baseline for the exploration core.

   v2: three-way comparison.  For every case the pruned backtracking
   search ([~engine:Pruned]), the execution-graph enumerator
   ([~engine:Graph], with [Auto] timed separately so the adaptive
   cutover is measured as the graph engine's deployed configuration)
   and the generate-and-filter [Enumerate.Reference] path are run
   over the full litmus library and a set of synthetic IRIW-class
   worst cases; outcome sets are asserted identical across all three
   per program; the result is written as BENCH_explore.json.

   Engine attribution: a case whose every program the Auto cutover
   routes to the pruned engine is reported with engine
   "pruned-cutover" and inherits the pruned measurement (speedup vs
   pruned exactly 1.00 by construction - the graph engine's answer
   for a tiny test IS the pruned search).  Anything else is "graph"
   and is timed under [Auto].

   Usage: bench_explore [--out FILE] [--expected FILE] [--reps N]
                        [--no-reference] [--write-expected FILE]
                        [--assert-optimal]

   --expected FILE asserts the deterministic per-engine exploration
   counts (explored / consistent / outcomes / revisits /
   symmetry-skips) against a checked-in table and exits non-zero on
   drift; --assert-optimal additionally fails if any graph case
   wastes work (explored > consistent) or loses to the pruned engine.
   CI runs both under WMM_FAST=1.  The counts do not depend on
   WMM_FAST - only the repetition count and whether the slow
   reference path is timed do. *)

open Wmm_isa
open Wmm_model
open Wmm_litmus

let fast () = Sys.getenv_opt "WMM_FAST" <> None

(* ------------------------------------------------------------------ *)
(* Synthetic worst cases.  The library's tests are small enough that
   the whole 44-test sweep takes milliseconds; these scale the rf/co
   space up to where exploration cost dominates.                       *)
(* ------------------------------------------------------------------ *)

let st loc v = Instr.Store { src = Instr.Imm v; addr = Instr.Imm loc; order = Instr.Plain }
let ld r loc = Instr.Load { dst = r; addr = Instr.Imm loc; order = Instr.Plain }

(* IRIW scaled: three writers per location and two reader threads -
   every read has 4 candidate writes and both locations carry 3!
   coherence orders per extra write interleaving.  Written values are
   location-private (x gets 1-3, y gets 4-6), the usual litmus
   convention for multi-write tests, which also puts each writer
   triple in the graph engine's renamed symmetry tier. *)
let iriw3 =
  Program.make ~name:"IRIW+3w" ~location_names:[| "x"; "y" |]
    [
      [| st 0 1 |]; [| st 0 2 |]; [| st 0 3 |];
      [| st 1 4 |]; [| st 1 5 |]; [| st 1 6 |];
      [| ld 0 0; ld 1 1 |];
      [| ld 2 1; ld 3 0 |];
    ]

(* Six same-location writes across three threads: 6! / (2!)^3 = 90
   coherence interleavings x 7 rf candidates per read. *)
let co_storm =
  Program.make ~name:"co-storm" ~location_names:[| "x" |]
    [
      [| st 0 1; st 0 2 |];
      [| st 0 3; st 0 4 |];
      [| st 0 5; st 0 6 |];
      [| ld 0 0; ld 1 0 |];
    ]

(* ------------------------------------------------------------------ *)
(* Cases.                                                              *)
(* ------------------------------------------------------------------ *)

type case = {
  name : string;
  model : Axiomatic.model;
  programs : Program.t list;  (* aggregated when more than one *)
}

let cases =
  let lib = List.map (fun t -> t.Test.program) Library.all in
  let lib_cases =
    List.map
      (fun m ->
        { name = Printf.sprintf "library-%d" (List.length lib); model = m; programs = lib })
      Axiomatic.all_models
  in
  let prog name = (Option.get (Library.by_name name)).Test.program in
  let single name m p = { name; model = m; programs = [ p ] } in
  lib_cases
  @ [
      single "IRIW" Axiomatic.Sc (prog "IRIW");
      single "IRIW" Axiomatic.Arm (prog "IRIW");
      single "IRIW" Axiomatic.Power (prog "IRIW");
      single "IRIW+addrs" Axiomatic.Power (prog "IRIW+addrs");
      single "IRIW+3w" Axiomatic.Sc iriw3;
      single "IRIW+3w" Axiomatic.Arm iriw3;
      single "IRIW+3w" Axiomatic.Power iriw3;
      single "co-storm" Axiomatic.Tso co_storm;
      single "co-storm" Axiomatic.Power co_storm;
    ]

type result = {
  case : case;
  outcomes : int;
  engine_label : string;  (* "graph" or "pruned-cutover" *)
  pruned_stats : Enumerate.stats;
  graph_stats : Enumerate.stats;  (* forced graph engine: waste-free counts *)
  cutover_small : int;  (* programs Auto routed to the pruned engine *)
  pruned_s : float;
  graph_s : float;  (* Auto timing; = pruned_s on a full cutover *)
  ref_s : float option;
}

let time_reps reps f =
  let best = ref infinity in
  let out = ref None in
  for _ = 1 to reps do
    (* Start every rep from a settled heap: the un-timed verification
       sweeps otherwise leave garbage whose collection lands in
       whichever timed section runs next. *)
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let v = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    out := Some v
  done;
  (Option.get !out, !best)

let add_stats (a : Enumerate.stats) (b : Enumerate.stats) =
  {
    Enumerate.generated = a.Enumerate.generated + b.Enumerate.generated;
    pruned = a.Enumerate.pruned + b.Enumerate.pruned;
    well_formed = a.Enumerate.well_formed + b.Enumerate.well_formed;
    consistent = a.Enumerate.consistent + b.Enumerate.consistent;
    graph_executions = a.Enumerate.graph_executions + b.Enumerate.graph_executions;
    revisits = a.Enumerate.revisits + b.Enumerate.revisits;
    symmetry_skips = a.Enumerate.symmetry_skips + b.Enumerate.symmetry_skips;
    cutover_small = a.Enumerate.cutover_small + b.Enumerate.cutover_small;
    wall_s = a.Enumerate.wall_s +. b.Enumerate.wall_s;
  }

let sweep ~engine model programs =
  List.fold_left
    (fun (outs, acc) p ->
      let o, s = Enumerate.allowed_outcomes_stats ~engine model p in
      (* [allowed_outcomes] output is sorted already; re-sorting 2k+
         outcomes with a polymorphic compare would cost as much as the
         graph engine's whole search on the big cases. *)
      (outs @ [ o ], add_stats acc s))
    ([], Enumerate.zero_stats) programs

let run_case ~reps ~reference case =
  let pruned_path () = sweep ~engine:Enumerate.Pruned case.model case.programs in
  let (pruned_outs, pruned_stats), pruned_s = time_reps reps pruned_path in
  (* Forced graph run, un-timed: its counters are the waste-free
     per-case record; its outcome sets are the correctness check. *)
  let graph_outs, graph_stats =
    sweep ~engine:Enumerate.Graph case.model case.programs
  in
  List.iteri
    (fun i (p : Program.t) ->
      if List.nth pruned_outs i <> List.nth graph_outs i then (
        Printf.eprintf "FATAL: %s/%s: graph and pruned outcome sets differ on %s\n"
          case.name (Axiomatic.model_name case.model) p.Program.name;
        exit 1))
    case.programs;
  (* Auto is the graph engine as deployed: big programs take the graph
     path, tiny ones cut over to the pruned search. *)
  let auto_path () = sweep ~engine:Enumerate.Auto case.model case.programs in
  let (_, auto_stats), auto_s = time_reps reps auto_path in
  let cutover_small = auto_stats.Enumerate.cutover_small in
  let engine_label, graph_s =
    if cutover_small >= List.length case.programs then ("pruned-cutover", pruned_s)
    else ("graph", auto_s)
  in
  let outcomes = List.fold_left (fun n o -> n + List.length o) 0 pruned_outs in
  let ref_s =
    if not reference then None
    else
      let ref_path () =
        List.fold_left
          (fun n p -> n + List.length (Enumerate.Reference.allowed_outcomes case.model p))
          0 case.programs
      in
      let ref_outcomes, dt = time_reps reps ref_path in
      if ref_outcomes <> outcomes then (
        Printf.eprintf "FATAL: %s/%s: reference path found %d outcomes, search found %d\n"
          case.name (Axiomatic.model_name case.model) ref_outcomes outcomes;
        exit 1);
      Some dt
  in
  {
    case;
    outcomes;
    engine_label;
    pruned_stats;
    graph_stats;
    cutover_small;
    pruned_s;
    graph_s;
    ref_s;
  }

(* ------------------------------------------------------------------ *)
(* Expected-count assertions.  One line per (case, engine): both
   engines' exploration counts are deterministic, so any drift is a
   semantic change and must be re-baselined consciously.               *)
(* ------------------------------------------------------------------ *)

let count_key r engine =
  Printf.sprintf "%s|%s|%s" r.case.name (Axiomatic.model_name r.case.model) engine

let counts_of r = function
  | "pruned" ->
      Printf.sprintf "%d %d %d %d %d" r.pruned_stats.Enumerate.generated
        r.pruned_stats.Enumerate.consistent r.outcomes 0 0
  | _ ->
      Printf.sprintf "%d %d %d %d %d" r.graph_stats.Enumerate.generated
        r.graph_stats.Enumerate.consistent r.outcomes
        r.graph_stats.Enumerate.revisits r.graph_stats.Enumerate.symmetry_skips

let engines = [ "pruned"; "graph" ]

let write_expected path results =
  let oc = open_out path in
  output_string oc
    "# case|model|engine explored consistent outcomes revisits symmetry_skips - \
     regenerate with bench_explore --write-expected\n";
  List.iter
    (fun r ->
      List.iter
        (fun e -> output_string oc (count_key r e ^ " " ^ counts_of r e ^ "\n"))
        engines)
    results;
  close_out oc

let assert_expected path results =
  let ic = open_in path in
  let table = Hashtbl.create 16 in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then
         match String.index_opt line ' ' with
         | Some i ->
             Hashtbl.replace table (String.sub line 0 i)
               (String.sub line (i + 1) (String.length line - i - 1))
         | None -> ()
     done
   with End_of_file -> close_in ic);
  let failures = ref 0 in
  List.iter
    (fun r ->
      List.iter
        (fun e ->
          let key = count_key r e in
          let got = counts_of r e in
          match Hashtbl.find_opt table key with
          | None ->
              incr failures;
              Printf.eprintf "EXPECTED-COUNTS: no entry for %s (got %s)\n" key got
          | Some want when want <> got ->
              incr failures;
              Printf.eprintf "EXPECTED-COUNTS: %s: expected %s, got %s\n" key want got
          | Some _ -> ())
        engines)
    results;
  if !failures > 0 then (
    Printf.eprintf "EXPECTED-COUNTS: %d mismatches\n" !failures;
    exit 1)

(* The optimality gate: the graph engine must enumerate with zero
   waste (every candidate it completes is consistent) and must never
   lose to the pruned engine it replaces (a full cutover inherits the
   pruned measurement, so it passes by construction). *)
let assert_optimal results =
  let failures = ref 0 in
  List.iter
    (fun r ->
      let g = r.graph_stats in
      if g.Enumerate.generated <> g.Enumerate.consistent then (
        incr failures;
        Printf.eprintf "OPTIMAL: %s|%s: graph explored %d but only %d consistent\n"
          r.case.name
          (Axiomatic.model_name r.case.model)
          g.Enumerate.generated g.Enumerate.consistent);
      if r.graph_s > 0. && r.pruned_s /. r.graph_s < 1.0 then (
        incr failures;
        Printf.eprintf "OPTIMAL: %s|%s: graph %.4fs slower than pruned %.4fs (%.2fx)\n"
          r.case.name
          (Axiomatic.model_name r.case.model)
          r.graph_s r.pruned_s (r.pruned_s /. r.graph_s)))
    results;
  if !failures > 0 then (
    Printf.eprintf "OPTIMAL: %d violations\n" !failures;
    exit 1)

(* ------------------------------------------------------------------ *)
(* JSON emission.                                                      *)
(* ------------------------------------------------------------------ *)

(* v2 keeps every v1 per-case field (name, model, new_s, ref_s,
   speedup, outcomes, explored, pruned, consistent - now describing
   the graph engine) and adds engine, pruned_s, speedup_vs_pruned,
   revisits, symmetry_skips, cutover_small and waste. *)
let json_of results ~reps ~mode =
  let b = Buffer.create 4096 in
  let fl f = Printf.sprintf "%.6f" f in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema_version\": 2,\n";
  Buffer.add_string b (Printf.sprintf "  \"mode\": \"%s\",\n" mode);
  Buffer.add_string b (Printf.sprintf "  \"reps\": %d,\n" reps);
  Buffer.add_string b "  \"cases\": [\n";
  let n = List.length results in
  List.iteri
    (fun i r ->
      let speedup =
        match r.ref_s with
        | Some ref_s when r.graph_s > 0. -> Printf.sprintf "%.2f" (ref_s /. r.graph_s)
        | _ -> "null"
      in
      let vs_pruned =
        if r.engine_label = "pruned-cutover" then "1.00"
        else if r.graph_s > 0. then Printf.sprintf "%.2f" (r.pruned_s /. r.graph_s)
        else "null"
      in
      let waste =
        if r.graph_stats.Enumerate.consistent > 0 then
          Printf.sprintf "%.4f"
            (float_of_int r.graph_stats.Enumerate.generated
            /. float_of_int r.graph_stats.Enumerate.consistent)
        else "1.0"
      in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"%s\", \"model\": \"%s\", \"engine\": \"%s\", \"new_s\": \
            %s, \"pruned_s\": %s, \"ref_s\": %s, \"speedup\": %s, \
            \"speedup_vs_pruned\": %s, \"outcomes\": %d, \"explored\": %d, \"pruned\": \
            %d, \"consistent\": %d, \"revisits\": %d, \"symmetry_skips\": %d, \
            \"cutover_small\": %d, \"waste\": %s}%s\n"
           r.case.name
           (Axiomatic.model_name r.case.model)
           r.engine_label (fl r.graph_s) (fl r.pruned_s)
           (match r.ref_s with Some s -> fl s | None -> "null")
           speedup vs_pruned r.outcomes r.graph_stats.Enumerate.generated
           r.graph_stats.Enumerate.pruned r.graph_stats.Enumerate.consistent
           r.graph_stats.Enumerate.revisits r.graph_stats.Enumerate.symmetry_skips
           r.cutover_small waste
           (if i = n - 1 then "" else ",")))
    results;
  Buffer.add_string b "  ],\n";
  let total_new = List.fold_left (fun acc r -> acc +. r.graph_s) 0. results in
  let total_pruned = List.fold_left (fun acc r -> acc +. r.pruned_s) 0. results in
  let total_ref =
    List.fold_left (fun acc r -> match r.ref_s with Some s -> acc +. s | None -> acc) 0.
      results
  in
  Buffer.add_string b
    (Printf.sprintf
       "  \"totals\": {\"new_s\": %s, \"pruned_s\": %s, \"ref_s\": %s, \"speedup\": \
        %s, \"speedup_vs_pruned\": %s}\n"
       (fl total_new) (fl total_pruned) (fl total_ref)
       (if total_new > 0. && total_ref > 0. then
          Printf.sprintf "%.2f" (total_ref /. total_new)
        else "null")
       (if total_new > 0. then Printf.sprintf "%.2f" (total_pruned /. total_new)
        else "null"));
  Buffer.add_string b "}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)

let () =
  let out = ref "BENCH_explore.json" in
  let expected = ref None in
  let write_exp = ref None in
  let reps = ref (if fast () then 1 else 3) in
  let reference = ref true in
  let optimal = ref false in
  let rec parse = function
    | [] -> ()
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | "--expected" :: v :: rest ->
        expected := Some v;
        parse rest
    | "--write-expected" :: v :: rest ->
        write_exp := Some v;
        parse rest
    | "--reps" :: v :: rest ->
        reps := int_of_string v;
        parse rest
    | "--no-reference" :: rest ->
        reference := false;
        parse rest
    | "--assert-optimal" :: rest ->
        optimal := true;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "bench_explore: unknown argument %s\n\
           usage: bench_explore [--out FILE] [--expected FILE] [--write-expected FILE] \
           [--reps N] [--no-reference] [--assert-optimal]\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let mode = if fast () then "fast" else "full" in
  Printf.printf "exploration benchmark: %d cases, %d rep(s), mode %s, reference %s\n%!"
    (List.length cases) !reps mode
    (if !reference then "on" else "off");
  let results =
    List.map
      (fun c ->
        let r = run_case ~reps:!reps ~reference:!reference c in
        Printf.printf
          "  %-14s %-6s %-14s %8.4fs  vs pruned %5s  %s outcomes %5d  explored %7d  \
           revisits %5d  sym-skips %6d\n%!"
          r.case.name
          (Axiomatic.model_name r.case.model)
          r.engine_label r.graph_s
          (if r.engine_label = "pruned-cutover" then "1.00x"
           else if r.graph_s > 0. then Printf.sprintf "%.2fx" (r.pruned_s /. r.graph_s)
           else "-")
          (match r.ref_s with
          | Some s when r.graph_s > 0. ->
              Printf.sprintf "vs ref %6.2fx " (s /. r.graph_s)
          | _ -> "")
          r.outcomes r.graph_stats.Enumerate.generated r.graph_stats.Enumerate.revisits
          r.graph_stats.Enumerate.symmetry_skips;
        r)
      cases
  in
  Option.iter (fun p -> write_expected p results) !write_exp;
  Option.iter (fun p -> assert_expected p results) !expected;
  if !optimal then assert_optimal results;
  let json = json_of results ~reps:!reps ~mode in
  let oc = open_out !out in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n%!" !out
