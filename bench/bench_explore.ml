(* Perf baseline for the exploration core.

   Times [Enumerate.allowed_outcomes] (the pruned backtracking
   search) against [Enumerate.Reference.allowed_outcomes] (the
   pre-rewrite generate-and-filter path) over the full litmus library
   and a set of synthetic IRIW-class worst cases, and writes the
   result as BENCH_explore.json - the repository's first checked-in
   performance baseline.

   Usage: bench_explore [--out FILE] [--expected FILE] [--reps N]
                        [--no-reference] [--write-expected FILE]

   --expected FILE asserts the deterministic exploration counts
   (candidates explored / consistent / distinct outcomes) against a
   checked-in table and exits non-zero on drift; CI runs this under
   WMM_FAST=1.  The counts do not depend on WMM_FAST - only the
   repetition count and whether the slow reference path is timed do. *)

open Wmm_isa
open Wmm_model
open Wmm_litmus

let fast () = Sys.getenv_opt "WMM_FAST" <> None

(* ------------------------------------------------------------------ *)
(* Synthetic worst cases.  The library's tests are small enough that
   the whole 44-test sweep takes milliseconds; these scale the rf/co
   space up to where exploration cost dominates.                       *)
(* ------------------------------------------------------------------ *)

let st loc v = Instr.Store { src = Instr.Imm v; addr = Instr.Imm loc; order = Instr.Plain }
let ld r loc = Instr.Load { dst = r; addr = Instr.Imm loc; order = Instr.Plain }

(* IRIW scaled: three writers per location and two reader threads -
   every read has 4 candidate writes and both locations carry 3!
   coherence orders per extra write interleaving. *)
let iriw3 =
  Program.make ~name:"IRIW+3w" ~location_names:[| "x"; "y" |]
    [
      [| st 0 1 |]; [| st 0 2 |]; [| st 0 3 |];
      [| st 1 1 |]; [| st 1 2 |]; [| st 1 3 |];
      [| ld 0 0; ld 1 1 |];
      [| ld 2 1; ld 3 0 |];
    ]

(* Six same-location writes across three threads: 6! / (2!)^3 = 90
   coherence interleavings x 7 rf candidates per read. *)
let co_storm =
  Program.make ~name:"co-storm" ~location_names:[| "x" |]
    [
      [| st 0 1; st 0 2 |];
      [| st 0 3; st 0 4 |];
      [| st 0 5; st 0 6 |];
      [| ld 0 0; ld 1 0 |];
    ]

(* ------------------------------------------------------------------ *)
(* Cases.                                                              *)
(* ------------------------------------------------------------------ *)

type case = {
  name : string;
  model : Axiomatic.model;
  programs : Program.t list;  (* aggregated when more than one *)
}

let cases =
  let lib = List.map (fun t -> t.Test.program) Library.all in
  let lib_cases =
    List.map
      (fun m ->
        { name = Printf.sprintf "library-%d" (List.length lib); model = m; programs = lib })
      Axiomatic.all_models
  in
  let prog name = (Option.get (Library.by_name name)).Test.program in
  let single name m p = { name; model = m; programs = [ p ] } in
  lib_cases
  @ [
      single "IRIW" Axiomatic.Sc (prog "IRIW");
      single "IRIW" Axiomatic.Arm (prog "IRIW");
      single "IRIW" Axiomatic.Power (prog "IRIW");
      single "IRIW+addrs" Axiomatic.Power (prog "IRIW+addrs");
      single "IRIW+3w" Axiomatic.Sc iriw3;
      single "IRIW+3w" Axiomatic.Arm iriw3;
      single "IRIW+3w" Axiomatic.Power iriw3;
      single "co-storm" Axiomatic.Tso co_storm;
      single "co-storm" Axiomatic.Power co_storm;
    ]

type result = {
  case : case;
  outcomes : int;
  stats : Enumerate.stats;
  new_s : float;
  ref_s : float option;
}

let time_reps reps f =
  let best = ref infinity in
  let out = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let v = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    out := Some v
  done;
  (Option.get !out, !best)

let zero_stats =
  { Enumerate.generated = 0; pruned = 0; well_formed = 0; consistent = 0; wall_s = 0. }

let add_stats (a : Enumerate.stats) (b : Enumerate.stats) =
  {
    Enumerate.generated = a.Enumerate.generated + b.Enumerate.generated;
    pruned = a.Enumerate.pruned + b.Enumerate.pruned;
    well_formed = a.Enumerate.well_formed + b.Enumerate.well_formed;
    consistent = a.Enumerate.consistent + b.Enumerate.consistent;
    wall_s = a.Enumerate.wall_s +. b.Enumerate.wall_s;
  }

let run_case ~reps ~reference case =
  let new_path () =
    List.fold_left
      (fun (n, acc) p ->
        let outs, s = Enumerate.allowed_outcomes_stats case.model p in
        (n + List.length outs, add_stats acc s))
      (0, zero_stats) case.programs
  in
  let (outcomes, stats), new_s = time_reps reps new_path in
  let ref_s =
    if not reference then None
    else
      let ref_path () =
        List.fold_left
          (fun n p -> n + List.length (Enumerate.Reference.allowed_outcomes case.model p))
          0 case.programs
      in
      let ref_outcomes, dt = time_reps reps ref_path in
      if ref_outcomes <> outcomes then (
        Printf.eprintf "FATAL: %s/%s: reference path found %d outcomes, search found %d\n"
          case.name (Axiomatic.model_name case.model) ref_outcomes outcomes;
        exit 1);
      Some dt
  in
  { case; outcomes; stats; new_s; ref_s }

(* ------------------------------------------------------------------ *)
(* Expected-count assertions.                                          *)
(* ------------------------------------------------------------------ *)

let count_key r = Printf.sprintf "%s|%s" r.case.name (Axiomatic.model_name r.case.model)

let count_line r =
  Printf.sprintf "%s %d %d %d" (count_key r) r.stats.Enumerate.generated
    r.stats.Enumerate.consistent r.outcomes

let write_expected path results =
  let oc = open_out path in
  output_string oc
    "# case|model explored consistent outcomes - regenerate with bench_explore --write-expected\n";
  List.iter (fun r -> output_string oc (count_line r ^ "\n")) results;
  close_out oc

let assert_expected path results =
  let ic = open_in path in
  let table = Hashtbl.create 16 in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then
         match String.index_opt line ' ' with
         | Some i ->
             Hashtbl.replace table (String.sub line 0 i)
               (String.sub line (i + 1) (String.length line - i - 1))
         | None -> ()
     done
   with End_of_file -> close_in ic);
  let failures = ref 0 in
  List.iter
    (fun r ->
      let key = count_key r in
      let got =
        Printf.sprintf "%d %d %d" r.stats.Enumerate.generated r.stats.Enumerate.consistent
          r.outcomes
      in
      match Hashtbl.find_opt table key with
      | None ->
          incr failures;
          Printf.eprintf "EXPECTED-COUNTS: no entry for %s (got %s)\n" key got
      | Some want when want <> got ->
          incr failures;
          Printf.eprintf "EXPECTED-COUNTS: %s: expected %s, got %s\n" key want got
      | Some _ -> ())
    results;
  if !failures > 0 then (
    Printf.eprintf "EXPECTED-COUNTS: %d mismatches\n" !failures;
    exit 1)

(* ------------------------------------------------------------------ *)
(* JSON emission.                                                      *)
(* ------------------------------------------------------------------ *)

let json_of results ~reps ~mode =
  let b = Buffer.create 4096 in
  let fl f = Printf.sprintf "%.6f" f in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema_version\": 1,\n";
  Buffer.add_string b (Printf.sprintf "  \"mode\": \"%s\",\n" mode);
  Buffer.add_string b (Printf.sprintf "  \"reps\": %d,\n" reps);
  Buffer.add_string b "  \"cases\": [\n";
  let n = List.length results in
  List.iteri
    (fun i r ->
      let speedup =
        match r.ref_s with
        | Some ref_s when r.new_s > 0. -> Printf.sprintf "%.2f" (ref_s /. r.new_s)
        | _ -> "null"
      in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"%s\", \"model\": \"%s\", \"new_s\": %s, \"ref_s\": %s, \
            \"speedup\": %s, \"outcomes\": %d, \"explored\": %d, \"pruned\": %d, \
            \"consistent\": %d}%s\n"
           r.case.name
           (Axiomatic.model_name r.case.model)
           (fl r.new_s)
           (match r.ref_s with Some s -> fl s | None -> "null")
           speedup r.outcomes r.stats.Enumerate.generated r.stats.Enumerate.pruned
           r.stats.Enumerate.consistent
           (if i = n - 1 then "" else ",")))
    results;
  Buffer.add_string b "  ],\n";
  let total_new = List.fold_left (fun acc r -> acc +. r.new_s) 0. results in
  let total_ref =
    List.fold_left (fun acc r -> match r.ref_s with Some s -> acc +. s | None -> acc) 0.
      results
  in
  Buffer.add_string b
    (Printf.sprintf "  \"totals\": {\"new_s\": %s, \"ref_s\": %s, \"speedup\": %s}\n"
       (fl total_new) (fl total_ref)
       (if total_new > 0. && total_ref > 0. then Printf.sprintf "%.2f" (total_ref /. total_new)
        else "null"));
  Buffer.add_string b "}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)

let () =
  let out = ref "BENCH_explore.json" in
  let expected = ref None in
  let write_exp = ref None in
  let reps = ref (if fast () then 1 else 3) in
  let reference = ref true in
  let rec parse = function
    | [] -> ()
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | "--expected" :: v :: rest ->
        expected := Some v;
        parse rest
    | "--write-expected" :: v :: rest ->
        write_exp := Some v;
        parse rest
    | "--reps" :: v :: rest ->
        reps := int_of_string v;
        parse rest
    | "--no-reference" :: rest ->
        reference := false;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "bench_explore: unknown argument %s\n\
           usage: bench_explore [--out FILE] [--expected FILE] [--write-expected FILE] \
           [--reps N] [--no-reference]\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let mode = if fast () then "fast" else "full" in
  Printf.printf "exploration benchmark: %d cases, %d rep(s), mode %s, reference %s\n%!"
    (List.length cases) !reps mode
    (if !reference then "on" else "off");
  let results =
    List.map
      (fun c ->
        let r = run_case ~reps:!reps ~reference:!reference c in
        Printf.printf "  %-14s %-6s new %8.4fs%s  outcomes %5d  explored %7d  pruned %7d\n%!"
          r.case.name
          (Axiomatic.model_name r.case.model)
          r.new_s
          (match r.ref_s with
          | Some s -> Printf.sprintf "  ref %8.4fs  speedup %6.2fx" s (s /. r.new_s)
          | None -> "")
          r.outcomes r.stats.Enumerate.generated r.stats.Enumerate.pruned;
        r)
      cases
  in
  Option.iter (fun p -> write_expected p results) !write_exp;
  Option.iter (fun p -> assert_expected p results) !expected;
  let json = json_of results ~reps:!reps ~mode in
  let oc = open_out !out in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n%!" !out
